package sampling

import (
	"time"

	"rsr/internal/bpred"
	"rsr/internal/mem"
	"rsr/internal/obs"
	"rsr/internal/warmup"
)

// Phase span names recorded per cluster (and the engine-facing categories
// under which rsrd/rsr expose them). They mirror the paper's time budget:
// cold functional skipping, the reverse scan over the skip log, unmeasured
// detailed warming, and the measured hot cluster.
const (
	PhaseColdSkip    = "cold-skip"
	PhaseReverseScan = "reverse-scan"
	PhaseWarmApply   = "warm-apply"
	PhaseHotSim      = "hot-sim"
	PhaseFullSim     = "full-sim"
	// PhaseCheckpoint is the parallel pre-pass capturing an architectural
	// checkpoint (registers + dirty-page delta) at a shard boundary.
	PhaseCheckpoint = "checkpoint-capture"
	// PhaseConsumerWait is the parallel consumer blocked on its next region
	// product — the pipeline-starvation signal.
	PhaseConsumerWait = "consumer-wait"
)

// Pipeline stage labels for rsr_sampling_pipeline_nanos_total: where a
// parallel run's wall-clock goes, split between shard-side (producer) work
// and the strictly serial consumer. consumer-adopt + consumer-sim is the
// Amdahl serial fraction; consumer-wait is starvation (producers too slow or
// too few).
const (
	StageProducerCold = "producer-cold" // cold skip + capture on shards
	StageProducerSeal = "producer-seal" // reverse-scan planning on shards
	StageConsumerWait = "consumer-wait" // consumer blocked on the next region
	StageConsumerWarm = "consumer-adopt"
	StageConsumerSim  = "consumer-sim"
)

// Instruments is the sampling layer's bundle of registry instruments.
// Construct one per registry with NewInstruments and share it across any
// number of concurrent runs; a nil *Instruments disables metric recording
// (and costs one branch per phase, never per instruction).
type Instruments struct {
	phaseInstr *obs.CounterVec   // instructions executed, by coarse phase
	phaseDur   *obs.HistogramVec // per-cluster phase latencies, by span name
	clusters   *obs.Counter
	runs       *obs.CounterVec // finished runs by kind

	// Warm-up work by method label: the paper's logged-vs-applied story.
	logged  *obs.CounterVec
	scanned *obs.CounterVec
	applied *obs.CounterVec
	warmOps *obs.CounterVec

	cacheEvents *obs.CounterVec // cache hierarchy event counts by level/event
	predUpdates *obs.CounterVec // predictor state mutations by structure

	// Parallel-pipeline instrumentation: per-region consumer starvation and
	// the producer-vs-consumer wall-clock split (the measured Amdahl story).
	consumerWait *obs.Histogram
	pipeline     *obs.CounterVec
}

// NewInstruments registers (idempotently) the sampling metric families on r
// and returns the bundle. A nil registry yields nil, which disables
// recording everywhere it is passed.
func NewInstruments(r *obs.Registry) *Instruments {
	if r == nil {
		return nil
	}
	return &Instruments{
		phaseInstr: r.CounterVec("rsr_sampling_phase_instructions_total",
			"Instructions executed per sampling phase (cold = functionally skipped, warm = unmeasured detailed warm-up, hot = measured cluster).",
			"phase"),
		phaseDur: r.HistogramVec("rsr_sampling_phase_seconds",
			"Per-cluster phase latency by span name.",
			obs.DurationBuckets, "phase"),
		clusters: r.Counter("rsr_sampling_clusters_total",
			"Clusters simulated across all sampled runs."),
		runs: r.CounterVec("rsr_sampling_runs_total",
			"Finished simulation runs by kind.", "kind"),
		logged: r.CounterVec("rsr_warmup_logged_records_total",
			"Skip-log records captured during cold phases, by warm-up method.", "method"),
		scanned: r.CounterVec("rsr_warmup_recon_scanned_total",
			"Skip-log records consumed by reverse scans, by warm-up method.", "method"),
		applied: r.CounterVec("rsr_warmup_recon_applied_total",
			"State mutations applied by reconstruction, by warm-up method (logged minus applied is the paper's ineffectual-skipped count).", "method"),
		warmOps: r.CounterVec("rsr_warmup_warm_ops_total",
			"Functional warming applications to caches or predictor, by warm-up method.", "method"),
		cacheEvents: r.CounterVec("rsr_cache_events_total",
			"Cache hierarchy events accumulated over finished runs.", "level", "event"),
		predUpdates: r.CounterVec("rsr_bpred_updates_total",
			"Branch predictor state mutations accumulated over finished runs.", "structure"),
		consumerWait: r.Histogram("rsr_sampling_consumer_wait_seconds",
			"Time the parallel consumer spent blocked waiting for a region product, per region (idle = starved by producers).",
			obs.DurationBuckets),
		pipeline: r.CounterVec("rsr_sampling_pipeline_nanos_total",
			"Parallel-run wall-clock by pipeline stage: producer-* is shard-side (overlapped) work, consumer-* is the serial fraction plus starvation.",
			"stage"),
	}
}

// publishMachine folds a finished run's cache and predictor event counters
// into the registry. Each run owns a fresh hierarchy and predictor, so the
// final counters are exactly the run's contribution.
func (in *Instruments) publishMachine(h *mem.Hierarchy, u *bpred.Unit) {
	if in == nil {
		return
	}
	h.EachCache(func(level string, s mem.Stats) {
		in.cacheEvents.With(level, "accesses").Add(s.Accesses)
		in.cacheEvents.With(level, "hits").Add(s.Hits)
		in.cacheEvents.With(level, "misses").Add(s.Misses)
		in.cacheEvents.With(level, "evictions").Add(s.Evictions)
		in.cacheEvents.With(level, "writebacks").Add(s.Writebacks)
	})
	c := u.UpdateCounts()
	in.predUpdates.With("dir").Add(c.Dir)
	in.predUpdates.With("btb").Add(c.BTB)
	in.predUpdates.With("ras").Add(c.RAS)
}

// runObs is the per-run observer: instrument series resolved once per run
// (label lookups take a lock, phase recording must not), the run's trace
// track, and the last warm-up Work snapshot for per-cluster deltas. A nil
// *runObs — the default — reduces every hook to a single branch, keeping
// uninstrumented runs byte-identical and allocation-free.
type runObs struct {
	tr  *obs.Tracer
	in  *Instruments
	tid int64
	cat string // trace category: the method label

	coldInstr, warmInstr, hotInstr     *obs.Counter
	coldDur, reconDur, warmDur, hotDur *obs.Histogram
	logged, scanned, applied, warmOps  *obs.Counter

	// Parallel-pipeline accounting. parallel is set once by runParallel via
	// setParallel; the sequential path leaves it false so the stage counters
	// stay absent (not zero) when no parallel run ever happened.
	parallel bool
	waitDur  *obs.Histogram
	pipeColdP, pipeSeal, pipeWait, pipeAdopt, pipeSim *obs.Counter

	prevWork warmup.Work
}

// newRunObs builds the observer for one run, or nil when both sinks are
// off. cat names the run on its trace spans; method is the warm-up label
// ("" for full runs, which perform no warm-up work).
func newRunObs(in *Instruments, tr *obs.Tracer, cat, method string) *runObs {
	if in == nil && tr == nil {
		return nil
	}
	ro := &runObs{tr: tr, in: in, cat: cat}
	if tr != nil {
		ro.tid = tr.NextTID()
	}
	if in != nil {
		ro.coldInstr = in.phaseInstr.With("cold")
		ro.warmInstr = in.phaseInstr.With("warm")
		ro.hotInstr = in.phaseInstr.With("hot")
		ro.coldDur = in.phaseDur.With(PhaseColdSkip)
		ro.reconDur = in.phaseDur.With(PhaseReverseScan)
		ro.warmDur = in.phaseDur.With(PhaseWarmApply)
		ro.hotDur = in.phaseDur.With(PhaseHotSim)
		if method != "" {
			ro.logged = in.logged.With(method)
			ro.scanned = in.scanned.With(method)
			ro.applied = in.applied.With(method)
			ro.warmOps = in.warmOps.With(method)
		}
		ro.waitDur = in.consumerWait
		ro.pipeColdP = in.pipeline.With(StageProducerCold)
		ro.pipeSeal = in.pipeline.With(StageProducerSeal)
		ro.pipeWait = in.pipeline.With(StageConsumerWait)
		ro.pipeAdopt = in.pipeline.With(StageConsumerWarm)
		ro.pipeSim = in.pipeline.With(StageConsumerSim)
	}
	return ro
}

// setParallel switches the observer into parallel-pipeline mode: the phase
// hooks additionally fold their durations into the per-stage wall-clock
// counters that expose the run's serial fraction.
func (ro *runObs) setParallel() {
	if ro == nil {
		return
	}
	ro.parallel = true
}

// begin marks a phase start. The zero time on the disabled path is never
// read: every consumer is also nil-guarded.
func (ro *runObs) begin() time.Time {
	if ro == nil {
		return time.Time{}
	}
	return time.Now()
}

// workDelta folds the warm-up work performed since the previous snapshot
// into the per-method counters and returns the delta for span annotation.
func (ro *runObs) workDelta(w warmup.Work) warmup.Work {
	d := w.Sub(ro.prevWork)
	ro.prevWork = w
	ro.logged.Add(d.LoggedRecords)
	ro.scanned.Add(d.ReconScanned)
	ro.applied.Add(d.ReconApplied)
	ro.warmOps.Add(d.WarmOps)
	return d
}

// coldDone records the cold-skip phase of one cluster.
func (ro *runObs) coldDone(t0 time.Time, cluster int, instrs uint64, w warmup.Work) {
	if ro == nil {
		return
	}
	dur := time.Since(t0)
	ro.coldDur.Observe(dur.Seconds())
	ro.coldInstr.Add(instrs)
	d := ro.workDelta(w)
	ro.span(PhaseColdSkip, t0, dur,
		obs.SpanArg{Key: "cluster", Val: int64(cluster)},
		obs.SpanArg{Key: "instructions", Val: int64(instrs)},
		obs.SpanArg{Key: "logged", Val: int64(d.LoggedRecords)},
		obs.SpanArg{Key: "warm_ops", Val: int64(d.WarmOps)})
}

// waitDone records one consumer blocking-wait for its next region product —
// the pipeline's starvation signal. Called only on the parallel path.
func (ro *runObs) waitDone(t0 time.Time, cluster int) {
	if ro == nil {
		return
	}
	dur := time.Since(t0)
	ro.waitDur.Observe(dur.Seconds())
	ro.pipeWait.Add(uint64(dur.Nanoseconds()))
	ro.span(PhaseConsumerWait, t0, dur,
		obs.SpanArg{Key: "cluster", Val: int64(cluster)})
}

// coldAdopted records a cold-skip phase that a shard producer already
// performed and timed: the parallel consumer folds the producer-measured
// durations (cold skip and plan sealing) and the adopted work into the same
// metric families as coldDone, plus the pipeline stage split. The phase's
// trace spans live on the producing shard's own track; adoptT0 is when the
// consumer's AdoptRegion call started.
func (ro *runObs) coldAdopted(coldDur, sealDur time.Duration, adoptT0 time.Time, instrs uint64, w warmup.Work) {
	if ro == nil {
		return
	}
	ro.coldDur.Observe(coldDur.Seconds())
	ro.coldInstr.Add(instrs)
	ro.workDelta(w)
	ro.pipeColdP.Add(uint64(coldDur.Nanoseconds()))
	ro.pipeSeal.Add(uint64(sealDur.Nanoseconds()))
	ro.pipeAdopt.Add(uint64(time.Since(adoptT0).Nanoseconds()))
}

// reconDone records the reconstruction phase (Method.EndSkip) of one
// cluster: for reverse methods this is the backward scan plus state
// application; for other methods it is empty and near-zero.
func (ro *runObs) reconDone(t0 time.Time, cluster int, w warmup.Work) {
	if ro == nil {
		return
	}
	dur := time.Since(t0)
	ro.reconDur.Observe(dur.Seconds())
	if ro.parallel {
		ro.pipeAdopt.Add(uint64(dur.Nanoseconds()))
	}
	d := ro.workDelta(w)
	ro.span(PhaseReverseScan, t0, dur,
		obs.SpanArg{Key: "cluster", Val: int64(cluster)},
		obs.SpanArg{Key: "scanned", Val: int64(d.ReconScanned)},
		obs.SpanArg{Key: "applied", Val: int64(d.ReconApplied)})
}

// warmDone records the unmeasured detailed warm-up phase of one cluster.
func (ro *runObs) warmDone(t0 time.Time, cluster int, instrs uint64) {
	if ro == nil {
		return
	}
	dur := time.Since(t0)
	ro.warmDur.Observe(dur.Seconds())
	if ro.parallel {
		ro.pipeSim.Add(uint64(dur.Nanoseconds()))
	}
	ro.warmInstr.Add(instrs)
	ro.span(PhaseWarmApply, t0, dur,
		obs.SpanArg{Key: "cluster", Val: int64(cluster)},
		obs.SpanArg{Key: "instructions", Val: int64(instrs)})
}

// hotDone records the measured hot cluster, folding in any warm-up work
// performed on demand during detailed simulation (the reverse predictor
// scans its log lazily from prediction sites).
func (ro *runObs) hotDone(t0 time.Time, cluster int, instrs uint64, w warmup.Work) {
	if ro == nil {
		return
	}
	dur := time.Since(t0)
	ro.hotDur.Observe(dur.Seconds())
	if ro.parallel {
		ro.pipeSim.Add(uint64(dur.Nanoseconds()))
	}
	ro.hotInstr.Add(instrs)
	if ro.in != nil {
		ro.in.clusters.Inc()
	}
	d := ro.workDelta(w)
	ro.span(PhaseHotSim, t0, dur,
		obs.SpanArg{Key: "cluster", Val: int64(cluster)},
		obs.SpanArg{Key: "instructions", Val: int64(instrs)},
		obs.SpanArg{Key: "scanned", Val: int64(d.ReconScanned)})
}

// fullDone records a complete detailed simulation as one hot span.
func (ro *runObs) fullDone(t0 time.Time, instrs uint64) {
	if ro == nil {
		return
	}
	dur := time.Since(t0)
	ro.hotInstr.Add(instrs)
	if ro.in != nil {
		ro.in.phaseDur.With(PhaseFullSim).Observe(dur.Seconds())
	}
	ro.span(PhaseFullSim, t0, dur,
		obs.SpanArg{Key: "instructions", Val: int64(instrs)})
}

// runDone records a finished run: machine event counters and the run count.
func (ro *runObs) runDone(kind string, h *mem.Hierarchy, u *bpred.Unit) {
	if ro == nil {
		return
	}
	if ro.in != nil {
		ro.in.runs.With(kind).Inc()
		ro.in.publishMachine(h, u)
	}
}

// span commits one completed phase span. The tracer API stamps spans at
// Begin time, so this reconstructs the record from the measured start —
// both sinks share a single time.Since per phase.
func (ro *runObs) span(name string, t0 time.Time, dur time.Duration, args ...obs.SpanArg) {
	if ro.tr == nil {
		return
	}
	ro.tr.Record(name, ro.cat, ro.tid, t0, dur, args...)
}
