package sampling

import (
	"strings"
	"testing"
)

func TestPositionsInvariants(t *testing.T) {
	cases := []struct {
		name  string
		total uint64
		reg   Regimen
	}{
		{"typical", 200_000, Regimen{ClusterSize: 2000, NumClusters: 10}},
		{"uneven-strata", 1_000_003, Regimen{ClusterSize: 1000, NumClusters: 7}},
		{"tight", 20_000, Regimen{ClusterSize: 2000, NumClusters: 9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				starts, err := Positions(tc.total, tc.reg, seed)
				if err != nil {
					t.Fatal(err)
				}
				if err := CheckPlacement(starts, tc.total, tc.reg); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}

func TestPositionsZeroSlack(t *testing.T) {
	// Strata exactly the cluster size: no randomness left, every start must
	// sit at its stratum boundary for every seed.
	reg := Regimen{ClusterSize: 2000, NumClusters: 10}
	for seed := int64(0); seed < 5; seed++ {
		starts, err := Positions(20_000, reg, seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckPlacement(starts, 20_000, reg); err != nil {
			t.Fatal(err)
		}
		for i, s := range starts {
			if s != uint64(i)*2000 {
				t.Fatalf("seed %d: zero-slack start %d = %d, want %d", seed, i, s, i*2000)
			}
		}
	}
}

func TestPositionsSingleCluster(t *testing.T) {
	reg := Regimen{ClusterSize: 5000, NumClusters: 1}
	starts, err := Positions(100_000, reg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 1 {
		t.Fatalf("starts = %v", starts)
	}
	if err := CheckPlacement(starts, 100_000, reg); err != nil {
		t.Fatal(err)
	}
	// The single stratum is the whole workload; its cluster must still fit.
	if starts[0]+reg.ClusterSize > 100_000 {
		t.Fatalf("cluster [%d,%d) exceeds workload", starts[0], starts[0]+reg.ClusterSize)
	}
}

func TestCheckPlacementRejects(t *testing.T) {
	reg := Regimen{ClusterSize: 1000, NumClusters: 4}
	const total = 40_000 // stratum = 10_000
	cases := []struct {
		name   string
		starts []uint64
		want   string
	}{
		{"count", []uint64{0, 10_000}, "starts for"},
		{"outside-stratum", []uint64{0, 5_000, 15_000, 30_000}, "outside its stratum"},
		{"unsorted", []uint64{9_500, 10_000, 20_000, 30_000}, "outside its stratum"},
	}
	for _, tc := range cases {
		err := CheckPlacement(tc.starts, total, reg)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
	// A regimen that fails Validate fails CheckPlacement with the same error.
	if err := CheckPlacement(nil, 100, Regimen{ClusterSize: 1000, NumClusters: 4}); err == nil {
		t.Fatal("invalid regimen accepted")
	}
}
