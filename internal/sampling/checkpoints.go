package sampling

import "rsr/internal/funcsim"

// CheckpointStore shares pre-pass checkpoint chains across runs — and,
// through the cluster fabric's content-addressed store, across nodes. A
// chain is the sequence of cumulative architectural deltas the parallel
// pipeline's pre-pass captures at shard boundaries; it is a pure function
// of its key (workload, total length, regimen, seed, shard count), which
// makes sharing sound: every producer for a key produces identical deltas,
// so load/store races and duplicated writes are benign, and a loaded chain
// seeds shards into exactly the state the local pre-pass would have
// computed — results stay byte-identical either way.
//
// Both methods are best-effort: a store that loses entries or refuses
// writes costs a recomputed pre-pass, never correctness.
type CheckpointStore interface {
	// LoadCheckpoints returns the chain stored under key, or nil when the
	// store has no (usable) entry.
	LoadCheckpoints(key string) []*funcsim.Delta

	// StoreCheckpoints persists a freshly captured chain under key. The
	// chain's deltas must be treated as immutable once handed over: the
	// caller keeps feeding them to shard goroutines.
	StoreCheckpoints(key string, chain []*funcsim.Delta)
}
