// Package sampling orchestrates cluster-sampled simulation (Figure 1 of the
// paper): hot cycle-accurate simulation of randomly placed clusters, cold
// functional simulation between them, and a pluggable warm-up method that
// observes the skipped stream and repairs microarchitectural state before
// each cluster.
//
// # Concurrency contract
//
// RunSampled, RunSampledOpts, RunSampledMethod, and RunFull build a fresh
// Hierarchy, predictor Unit, timing model, and functional simulator for
// every call and share no mutable state between calls; the input Program is
// read-only. Any number of runs may therefore execute concurrently (the
// engine package relies on this), and because every run is deterministic in
// its inputs, concurrent and sequential execution produce identical results.
// TestRunSampledFreshStatePerCall asserts this contract.
package sampling

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"rsr/internal/bpred"
	"rsr/internal/funcsim"
	"rsr/internal/mem"
	"rsr/internal/obs"
	"rsr/internal/ooo"
	"rsr/internal/prog"
	"rsr/internal/stats"
	"rsr/internal/trace"
	"rsr/internal/warmup"
)

// Regimen defines a sampling design: the cluster (sampling-unit) size in
// instructions and how many clusters make up the sample.
type Regimen struct {
	ClusterSize uint64
	NumClusters int
}

// Validate checks the regimen against a total workload length.
func (r Regimen) Validate(total uint64) error {
	if r.ClusterSize == 0 || r.NumClusters <= 0 {
		return errors.New("sampling: cluster size and count must be positive")
	}
	// NumClusters*ClusterSize <= total implies floor(total/NumClusters) >=
	// ClusterSize, so every stratum fits its cluster: no separate stratum
	// check is needed (TestRegimenValidateBoundaries pins the boundaries).
	if uint64(r.NumClusters)*r.ClusterSize > total {
		return fmt.Errorf("sampling: %d clusters of %d exceed workload length %d",
			r.NumClusters, r.ClusterSize, total)
	}
	return nil
}

// Positions returns the cluster start positions (dynamic instruction
// indices), sorted ascending. Placement is stratified-uniform: the workload
// is divided into NumClusters equal strata and each cluster start is drawn
// uniformly within its stratum, which matches the paper's uniformly random
// starting positions while guaranteeing ordering and non-overlap.
func Positions(total uint64, r Regimen, seed int64) ([]uint64, error) {
	if err := r.Validate(total); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	stratum := total / uint64(r.NumClusters)
	starts := make([]uint64, r.NumClusters)
	for i := range starts {
		slack := stratum - r.ClusterSize
		off := uint64(0)
		if slack > 0 {
			off = uint64(rng.Int63n(int64(slack + 1)))
		}
		starts[i] = uint64(i)*stratum + off
	}
	return starts, nil
}

// MachineConfig bundles the simulated machine.
type MachineConfig struct {
	CPU  ooo.Config
	Hier mem.HierarchyConfig
	Pred bpred.Config
}

// DefaultMachine returns the paper's machine (§4).
func DefaultMachine() MachineConfig {
	return MachineConfig{
		CPU:  ooo.DefaultConfig(),
		Hier: mem.DefaultHierarchyConfig(),
		Pred: bpred.DefaultConfig(),
	}
}

// ClusterStat is the measurement taken from one cluster.
type ClusterStat struct {
	Start  uint64 // dynamic instruction index of the cluster start
	Result ooo.Result
}

// RunResult summarizes one sampled simulation.
type RunResult struct {
	Method   string
	Clusters []ClusterStat
	// Elapsed is the wall-clock duration of the whole sampled run.
	Elapsed time.Duration
	// Work is the warm-up method's state-operation count.
	Work warmup.Work
	// FuncInstructions counts functionally executed (skipped) instructions.
	FuncInstructions uint64
	// HotInstructions counts instructions retired by the timing model.
	HotInstructions uint64
}

// IPCs returns the per-cluster IPC sample.
func (r *RunResult) IPCs() []float64 {
	out := make([]float64, len(r.Clusters))
	for i, c := range r.Clusters {
		out[i] = c.Result.IPC()
	}
	return out
}

// CPIs returns the per-cluster cycles-per-instruction sample. With
// equal-size clusters the mean CPI is the unbiased estimator of the
// population CPI, so estimates aggregate in CPI space (as SMARTS does) and
// convert to IPC at the end; an arithmetic mean of cluster IPCs would
// overweight fast phases on workloads with high phase variance.
func (r *RunResult) CPIs() []float64 {
	out := make([]float64, len(r.Clusters))
	for i, c := range r.Clusters {
		if c.Result.Instructions > 0 {
			out[i] = float64(c.Result.Cycles) / float64(c.Result.Instructions)
		}
	}
	return out
}

// IPCEstimate returns the sampled IPC estimate, 1 / mean cluster CPI.
func (r *RunResult) IPCEstimate() float64 {
	m := stats.Mean(r.CPIs())
	if m == 0 {
		return 0
	}
	return 1 / m
}

// CI returns the 95% confidence interval of the mean cluster CPI.
func (r *RunResult) CI() stats.Interval { return stats.CI95(r.CPIs()) }

// ConfidenceContains reports whether the 95% confidence interval covers the
// true IPC (the paper's confidence test), evaluated in CPI space where the
// interval is constructed.
func (r *RunResult) ConfidenceContains(trueIPC float64) bool {
	if trueIPC == 0 {
		return false
	}
	return r.CI().Contains(1 / trueIPC)
}

// RunSampled executes the sampled simulation of program p under the given
// machine, regimen, and warm-up specification. The same seed produces the
// same cluster positions (and therefore the same sampling bias) for every
// method, as the paper's methodology requires.
func RunSampled(p *prog.Program, m MachineConfig, reg Regimen, total uint64, seed int64, spec warmup.Spec) (*RunResult, error) {
	return RunSampledMethod(p, m, reg, total, seed, func(h *mem.Hierarchy, u *bpred.Unit) warmup.Method {
		return spec.New(h, u)
	})
}

// ErrCanceled is returned when a run is stopped through Options.Cancel
// before completing.
var ErrCanceled = errors.New("sampling: run canceled")

// Options tunes the sampled-run controller beyond the warm-up method.
type Options struct {
	// DetailedWarmup runs this many skip-region instructions through the
	// timing model immediately before each cluster without measuring them:
	// "hot-start" warming that repairs pipeline-adjacent state (and caches /
	// predictor, at detailed fidelity) at full detailed cost. It is an
	// ablation point between functional warming and simply enlarging
	// clusters.
	DetailedWarmup uint64
	// Cancel, when non-nil, aborts the run with ErrCanceled once the channel
	// is closed. Runs poll it once per instruction batch (and sampled runs
	// additionally at cluster boundaries), so results of uncanceled runs are
	// unaffected.
	Cancel <-chan struct{}
	// Shards, when > 1, runs the sampled simulation through the parallel
	// cluster pipeline (RunSampledParallel): cold functional execution,
	// skip observation into private region captures, and producer-side
	// reconstruction planning fan out over shard goroutines seeded from
	// architectural checkpoints, while shared microarchitectural state
	// advances sequentially in cluster order, so results stay byte-identical
	// to the sequential run. Every warm-up method shards — functional
	// warming captures its would-be applications and replays them at
	// adoption. 0 or 1 selects the sequential path. Shards is an execution
	// policy, not part of a run's identity.
	Shards int
	// ConsumerRecon, when set alongside Shards > 1, skips producer-side
	// capture sealing so the reverse scans run on the consumer at EndSkip
	// (the pre-shard-side placement). Results are byte-identical either way
	// (TestParallelConsumerReconIdentical); the flag exists for the rsrbench
	// recon_shardside ablation and costs nothing when unset.
	ConsumerRecon bool
	// Checkpoints, when non-nil alongside a non-empty CheckpointKey, lets
	// the parallel pipeline load its pre-pass checkpoint chain from a
	// shared store (skipping the pre-pass functional run) and persist a
	// freshly captured chain for other runs — or other nodes — with the
	// same key. Chains are pure functions of their key, so reuse preserves
	// byte-identical results; both fields are execution policy, never part
	// of a run's identity.
	Checkpoints   CheckpointStore
	CheckpointKey string
	// Instr, when non-nil, streams per-phase instruction counts, durations,
	// warm-up work deltas, and machine event counters into its registry.
	// Tracer, when non-nil, records one span per cluster phase (cold-skip,
	// reverse-scan, warm-apply, hot-sim) on a track of its own. Both default
	// off; recording happens at phase boundaries — never per instruction —
	// so enabling them does not perturb results (TestInstrumentedRunIdentical
	// pins this) and the simulation hot loops stay allocation-free.
	Instr  *Instruments
	Tracer *obs.Tracer
}

// canceled reports whether the cancel channel (if any) has been closed.
func (o Options) canceled() bool {
	if o.Cancel == nil {
		return false
	}
	select {
	case <-o.Cancel:
		return true
	default:
		return false
	}
}

// RunSampledOpts is RunSampled with controller options.
func RunSampledOpts(p *prog.Program, m MachineConfig, reg Regimen, total uint64, seed int64, spec warmup.Spec, opts Options) (*RunResult, error) {
	return runSampled(p, m, reg, total, seed, func(h *mem.Hierarchy, u *bpred.Unit) warmup.Method {
		return spec.New(h, u)
	}, opts)
}

// RunSampledParallel is RunSampledOpts with intra-run cluster parallelism:
// opts.Shards goroutines (defaulting to GOMAXPROCS when unset) divide the
// clusters into contiguous shards, a fast functional pre-pass seeds each
// shard with an architectural checkpoint (registers plus dirty-page deltas)
// at its boundary, and the shards execute their cold phases, capture their
// skip observations, and materialize reconstruction plans concurrently
// while shared microarchitectural state — caches, predictor — advances
// strictly in cluster order. The result is byte-identical to the sequential
// run for every warm-up method (see DESIGN.md "Parallel cluster simulation"
// for the determinism argument).
func RunSampledParallel(p *prog.Program, m MachineConfig, reg Regimen, total uint64, seed int64, spec warmup.Spec, opts Options) (*RunResult, error) {
	if opts.Shards == 0 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	return RunSampledOpts(p, m, reg, total, seed, spec, opts)
}

// RunSampledMethod is RunSampled for warm-up methods that need more context
// than a Spec carries (for example the profiling-based MRRL/BLRL methods,
// whose per-region warm windows are computed ahead of time). The factory
// receives the run's hierarchy and predictor.
func RunSampledMethod(p *prog.Program, m MachineConfig, reg Regimen, total uint64, seed int64, mk func(*mem.Hierarchy, *bpred.Unit) warmup.Method) (*RunResult, error) {
	return runSampled(p, m, reg, total, seed, mk, Options{})
}

// stream feeds the timing model from the functional simulator in batches
// (funcsim.BatchSize records per Fill), polling cancellation once per batch.
// It implements ooo.Source; Fill is clamped by the caller's remaining budget
// so the functional simulator never executes past a region boundary.
type stream struct {
	fs   *funcsim.Sim
	buf  []trace.DynInst
	opts *Options
	err  error
}

func (st *stream) Fill(max uint64) []trace.DynInst {
	if st.err != nil {
		return nil
	}
	if st.opts.canceled() {
		st.err = ErrCanceled
		return nil
	}
	b := st.buf
	if max < uint64(len(b)) {
		b = b[:max]
	}
	n, err := st.fs.RunBatch(b)
	if err != nil {
		st.err = err
	}
	return b[:n]
}

func runSampled(p *prog.Program, m MachineConfig, reg Regimen, total uint64, seed int64, mk func(*mem.Hierarchy, *bpred.Unit) warmup.Method, opts Options) (*RunResult, error) {
	starts, err := Positions(total, reg, seed)
	if err != nil {
		return nil, err
	}
	hier := mem.NewHierarchy(m.Hier)
	unit := bpred.NewUnit(m.Pred)
	method := mk(hier, unit)
	sim := ooo.New(m.CPU, hier, method.Predictor())

	if shards := shardCount(opts.Shards, len(starts)); shards > 1 {
		// Every method supports region captures (part of the Method
		// contract), so a sharded request never falls back to the
		// sequential path.
		return runParallel(p, reg, starts, hier, unit, method, sim, shards, opts)
	}

	fs := funcsim.New(p)

	res := &RunResult{Method: method.Name()}
	ro := newRunObs(opts.Instr, opts.Tracer, method.Name(), method.Name())
	begin := time.Now()
	buf := make([]trace.DynInst, funcsim.BatchSize)
	st := &stream{fs: fs, buf: buf, opts: &opts}
	observe := method.ObserveSkipBatch
	var pos uint64
	for ci, start := range starts {
		if opts.canceled() {
			return nil, ErrCanceled
		}
		skip := start - pos
		dw := opts.DetailedWarmup
		if dw > skip {
			dw = skip
		}
		cold := skip - dw

		// Cold phase: batch-execute the skip region, handing each batch to
		// the warm-up method and polling cancellation between batches.
		t0 := ro.begin()
		method.BeginSkip(cold)
		var ran uint64
		for ran < cold {
			b := buf
			if rem := cold - ran; rem < uint64(len(b)) {
				b = b[:rem]
			}
			k, err := fs.RunBatch(b)
			if err != nil {
				return nil, fmt.Errorf("sampling: cold phase: %w", err)
			}
			if k > 0 {
				observe(b[:k])
			}
			ran += uint64(k)
			if k < len(b) {
				break // halted
			}
			if opts.canceled() {
				return nil, ErrCanceled
			}
		}
		if ran != cold {
			return nil, fmt.Errorf("sampling: workload halted after %d skipped instructions", ran)
		}
		res.FuncInstructions += ran
		ro.coldDone(t0, ci, ran, method.Work())

		t0 = ro.begin()
		method.EndSkip()
		ro.reconDone(t0, ci, method.Work())
		pos += ran

		if dw > 0 {
			// Unmeasured detailed warm-up immediately before the cluster.
			t0 = ro.begin()
			w := sim.SimulateSource(dw, st)
			if st.err != nil {
				return nil, fmt.Errorf("sampling: detailed warm-up: %w", st.err)
			}
			res.FuncInstructions += w.Instructions
			pos += w.Instructions
			ro.warmDone(t0, ci, w.Instructions)
		}

		t0 = ro.begin()
		r := sim.SimulateSource(reg.ClusterSize, st)
		if st.err != nil {
			return nil, fmt.Errorf("sampling: hot phase: %w", st.err)
		}
		res.FuncInstructions += r.Instructions
		res.HotInstructions += r.Instructions
		res.Clusters = append(res.Clusters, ClusterStat{Start: start, Result: r})
		pos += r.Instructions
		ro.hotDone(t0, ci, r.Instructions, method.Work())
	}
	res.Elapsed = time.Since(begin)
	res.Work = method.Work()
	ro.runDone("sampled", hier, unit)
	return res, nil
}

// FullResult is a complete detailed simulation — the paper's "true IPC"
// baseline.
type FullResult struct {
	Result  ooo.Result
	Elapsed time.Duration
}

// RunFull simulates the first `total` instructions of p cycle-accurately.
func RunFull(p *prog.Program, m MachineConfig, total uint64) (FullResult, error) {
	return RunFullOpts(p, m, total, Options{})
}

// RunFullOpts is RunFull with controller options (only Options.Cancel
// applies). The cancel poll runs once per instruction batch, so an uncanceled
// run is identical to RunFull.
func RunFullOpts(p *prog.Program, m MachineConfig, total uint64, opts Options) (FullResult, error) {
	hier := mem.NewHierarchy(m.Hier)
	unit := bpred.NewUnit(m.Pred)
	sim := ooo.New(m.CPU, hier, unit)
	fs := funcsim.New(p)
	ro := newRunObs(opts.Instr, opts.Tracer, "full", "")
	begin := time.Now()
	st := &stream{fs: fs, buf: make([]trace.DynInst, funcsim.BatchSize), opts: &opts}
	t0 := ro.begin()
	r := sim.SimulateSource(total, st)
	if st.err != nil {
		return FullResult{}, fmt.Errorf("sampling: full run: %w", st.err)
	}
	ro.fullDone(t0, r.Instructions)
	ro.runDone("full", hier, unit)
	return FullResult{Result: r, Elapsed: time.Since(begin)}, nil
}

var _ bpred.Predictor = (*bpred.Unit)(nil)
