package sampling

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"rsr/internal/stats"
	"rsr/internal/warmup"
	"rsr/internal/workload"
)

func TestPositionsProperties(t *testing.T) {
	reg := Regimen{ClusterSize: 1000, NumClusters: 20}
	total := uint64(1_000_000)
	starts, err := Positions(total, reg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 20 {
		t.Fatalf("got %d starts", len(starts))
	}
	for i, s := range starts {
		if s+reg.ClusterSize > total {
			t.Fatalf("cluster %d overruns workload", i)
		}
		if i > 0 && starts[i-1]+reg.ClusterSize > s {
			t.Fatalf("clusters %d and %d overlap", i-1, i)
		}
	}
}

func TestPositionsDeterministicBySeed(t *testing.T) {
	reg := Regimen{ClusterSize: 500, NumClusters: 10}
	a, _ := Positions(100000, reg, 7)
	b, _ := Positions(100000, reg, 7)
	c, _ := Positions(100000, reg, 8)
	same := true
	diff := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed must give same positions")
	}
	if !diff {
		t.Fatal("different seeds should give different positions")
	}
}

func TestPositionsValidation(t *testing.T) {
	cases := []struct {
		total uint64
		reg   Regimen
	}{
		{1000, Regimen{ClusterSize: 0, NumClusters: 5}},
		{1000, Regimen{ClusterSize: 100, NumClusters: 0}},
		{1000, Regimen{ClusterSize: 600, NumClusters: 2}},
	}
	for i, c := range cases {
		if _, err := Positions(c.total, c.reg, 1); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func testRun(t *testing.T, spec warmup.Spec) *RunResult {
	t.Helper()
	w, err := workload.ByName("twolf")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSampled(w.Build(), DefaultMachine(),
		Regimen{ClusterSize: 1000, NumClusters: 10}, 500_000, 42, spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunSampledBasics(t *testing.T) {
	res := testRun(t, warmup.Spec{Kind: warmup.KindNone})
	if len(res.Clusters) != 10 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
	if res.HotInstructions != 10*1000 {
		t.Fatalf("hot instructions = %d", res.HotInstructions)
	}
	for i, ipc := range res.IPCs() {
		if ipc <= 0 || ipc > 4 {
			t.Fatalf("cluster %d IPC = %f out of range", i, ipc)
		}
	}
}

func TestRunSampledDeterministic(t *testing.T) {
	a := testRun(t, warmup.Spec{Kind: warmup.KindSMARTS, Cache: true, BPred: true})
	b := testRun(t, warmup.Spec{Kind: warmup.KindSMARTS, Cache: true, BPred: true})
	for i := range a.Clusters {
		if a.Clusters[i].Result != b.Clusters[i].Result {
			t.Fatalf("cluster %d differs between identical runs", i)
		}
	}
	if a.Work != b.Work {
		t.Fatal("work counters differ between identical runs")
	}
}

func TestWarmupReducesError(t *testing.T) {
	// End-to-end: SMARTS warm-up must estimate the true IPC better than no
	// warm-up on a warm-up-sensitive workload, and RSR must land near
	// SMARTS. This is the paper's central claim in miniature.
	w, err := workload.ByName("twolf")
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(500_000)
	full, err := RunFull(w.Build(), DefaultMachine(), total)
	if err != nil {
		t.Fatal(err)
	}
	trueIPC := full.Result.IPC()

	run := func(spec warmup.Spec) float64 {
		res, err := RunSampled(w.Build(), DefaultMachine(),
			Regimen{ClusterSize: 1000, NumClusters: 20}, total, 42, spec)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Mean(res.IPCs())
	}
	noneIPC := run(warmup.Spec{Kind: warmup.KindNone})
	smartsIPC := run(warmup.Spec{Kind: warmup.KindSMARTS, Cache: true, BPred: true})
	rsrIPC := run(warmup.Spec{Kind: warmup.KindReverse, Percent: 100, Cache: true, BPred: true})

	errNone := stats.RelErr(noneIPC, trueIPC)
	errSmarts := stats.RelErr(smartsIPC, trueIPC)
	errRSR := stats.RelErr(rsrIPC, trueIPC)
	t.Logf("true=%.4f none=%.4f (%.2f%%) smarts=%.4f (%.2f%%) rsr=%.4f (%.2f%%)",
		trueIPC, noneIPC, 100*errNone, smartsIPC, 100*errSmarts, rsrIPC, 100*errRSR)

	if errSmarts >= errNone {
		t.Fatalf("SMARTS error %.4f not better than no-warm-up %.4f", errSmarts, errNone)
	}
	if errRSR > errNone {
		t.Fatalf("RSR error %.4f worse than no-warm-up %.4f", errRSR, errNone)
	}
	if errRSR > errSmarts+0.05 {
		t.Fatalf("RSR error %.4f not close to SMARTS %.4f", errRSR, errSmarts)
	}
}

func TestReverseLogsLessWorkThanSMARTSWarmOps(t *testing.T) {
	smarts := testRun(t, warmup.Spec{Kind: warmup.KindSMARTS, Cache: true, BPred: true})
	rsr := testRun(t, warmup.Spec{Kind: warmup.KindReverse, Percent: 20, Cache: true, BPred: true})
	if smarts.Work.WarmOps == 0 {
		t.Fatal("SMARTS should perform warm operations")
	}
	if rsr.Work.WarmOps != 0 {
		t.Fatal("RSR performs no functional warm operations")
	}
	if rsr.Work.ReconApplied >= smarts.Work.WarmOps {
		t.Fatalf("RSR applied %d reconstructions, not less than SMARTS %d warm ops",
			rsr.Work.ReconApplied, smarts.Work.WarmOps)
	}
}

func TestRunFull(t *testing.T) {
	w, _ := workload.ByName("parser")
	res, err := RunFull(w.Build(), DefaultMachine(), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result.Instructions != 200_000 {
		t.Fatalf("instructions = %d", res.Result.Instructions)
	}
	if ipc := res.Result.IPC(); ipc <= 0 || ipc > 4 {
		t.Fatalf("IPC = %f", ipc)
	}
}

func TestRunSampledOptsDetailedWarmup(t *testing.T) {
	w, err := workload.ByName("twolf")
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(500_000)
	reg := Regimen{ClusterSize: 1000, NumClusters: 20}

	plain, err := RunSampledOpts(w.Build(), DefaultMachine(), reg, total, 42,
		warmup.Spec{Kind: warmup.KindNone}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dw, err := RunSampledOpts(w.Build(), DefaultMachine(), reg, total, 42,
		warmup.Spec{Kind: warmup.KindNone}, Options{DetailedWarmup: 5000})
	if err != nil {
		t.Fatal(err)
	}
	// Same measured cluster count and positions.
	if len(dw.Clusters) != len(plain.Clusters) {
		t.Fatal("cluster counts differ")
	}
	for i := range dw.Clusters {
		if dw.Clusters[i].Start != plain.Clusters[i].Start {
			t.Fatal("cluster starts moved")
		}
	}
	if dw.HotInstructions != plain.HotInstructions {
		t.Fatal("measured hot instruction counts must match")
	}
	// Detailed warming must reduce error against the truth.
	full, err := RunFull(w.Build(), DefaultMachine(), total)
	if err != nil {
		t.Fatal(err)
	}
	trueIPC := full.Result.IPC()
	ePlain := stats.RelErr(plain.IPCEstimate(), trueIPC)
	eDW := stats.RelErr(dw.IPCEstimate(), trueIPC)
	if eDW >= ePlain {
		t.Fatalf("detailed warmup RE %.4f not better than none %.4f", eDW, ePlain)
	}
}

func TestRunSampledOptsWarmupCappedBySkip(t *testing.T) {
	// DetailedWarmup longer than the skip region must not break anything.
	w, _ := workload.ByName("parser")
	reg := Regimen{ClusterSize: 1000, NumClusters: 5}
	res, err := RunSampledOpts(w.Build(), DefaultMachine(), reg, 100_000, 1,
		warmup.Spec{Kind: warmup.KindNone}, Options{DetailedWarmup: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 5 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
}

// TestRunSampledFreshStatePerCall asserts the package's concurrency
// contract: every run builds a fresh Hierarchy/Unit/funcsim, so concurrent
// runs of the same job share no mutable state and reproduce the sequential
// result exactly. Run under -race (see the Makefile verify target) this
// also proves the absence of data races between runs.
func TestRunSampledFreshStatePerCall(t *testing.T) {
	w, _ := workload.ByName("twolf")
	p := w.Build()
	reg := Regimen{ClusterSize: 2000, NumClusters: 10}
	spec := warmup.Spec{Kind: warmup.KindReverse, Percent: 40, Cache: true, BPred: true}
	const total = 400_000

	want, err := RunSampled(p, DefaultMachine(), reg, total, 1, spec)
	if err != nil {
		t.Fatal(err)
	}
	want.Elapsed = 0

	const runs = 4
	results := make([]*RunResult, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// The Program is shared read-only across the goroutines; all
			// mutable simulation state must be per-call.
			results[i], errs[i] = RunSampled(p, DefaultMachine(), reg, total, 1, spec)
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		results[i].Elapsed = 0
		if !reflect.DeepEqual(results[i], want) {
			t.Fatalf("concurrent run %d diverged from the sequential result", i)
		}
	}
}

// TestRunFullFreshStatePerCall is the same contract for full detailed runs.
func TestRunFullFreshStatePerCall(t *testing.T) {
	w, _ := workload.ByName("parser")
	p := w.Build()
	want, err := RunFull(p, DefaultMachine(), 200_000)
	if err != nil {
		t.Fatal(err)
	}
	const runs = 3
	results := make([]FullResult, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunFull(p, DefaultMachine(), 200_000)
		}(i)
	}
	wg.Wait()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i].Result != want.Result {
			t.Fatalf("concurrent full run %d diverged: %+v vs %+v", i, results[i].Result, want.Result)
		}
	}
}

// TestRunSampledCancel covers Options.Cancel: a closed channel aborts the
// run with ErrCanceled at the next cluster boundary, and a never-closed
// channel leaves the result untouched.
func TestRunSampledCancel(t *testing.T) {
	w, _ := workload.ByName("twolf")
	p := w.Build()
	reg := Regimen{ClusterSize: 2000, NumClusters: 10}
	spec := warmup.Spec{Kind: warmup.KindNone}

	closed := make(chan struct{})
	close(closed)
	if _, err := RunSampledOpts(p, DefaultMachine(), reg, 400_000, 1, spec,
		Options{Cancel: closed}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if _, err := RunFullOpts(p, DefaultMachine(), 200_000, Options{Cancel: closed}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("full err = %v, want ErrCanceled", err)
	}

	open := make(chan struct{})
	got, err := RunSampledOpts(p, DefaultMachine(), reg, 400_000, 1, spec, Options{Cancel: open})
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunSampled(p, DefaultMachine(), reg, 400_000, 1, spec)
	if err != nil {
		t.Fatal(err)
	}
	got.Elapsed, want.Elapsed = 0, 0
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cancelable run with open channel diverged from plain run")
	}
}
