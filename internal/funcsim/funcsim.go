// Package funcsim implements the architecturally-correct functional simulator
// at the bottom of the stack. It is the analogue of SimpleScalar's functional
// engine in the paper: it retains valid architectural state while the timing
// model is off (cold and warm phases) and produces the committed dynamic
// instruction stream the timing model replays during hot phases.
package funcsim

import (
	"errors"
	"fmt"
	"math"

	"rsr/internal/isa"
	"rsr/internal/prog"
	"rsr/internal/trace"
)

// ErrHalted is returned by Step after the program executes a halt.
var ErrHalted = errors.New("funcsim: program halted")

// Sim executes a Program one instruction at a time.
type Sim struct {
	prog   *prog.Program
	mem    *Memory
	regs   [isa.NumRegs]uint64
	pc     uint64
	seq    uint64
	halted bool
	// batch is the reusable record buffer backing Skip; allocated lazily so
	// sims that only Step or RunBatch into caller-owned buffers pay nothing.
	batch []trace.DynInst
}

// New returns a simulator positioned at the program entry with the data
// segment installed.
func New(p *prog.Program) *Sim {
	s := &Sim{prog: p, mem: NewMemory(), pc: p.Entry}
	for _, d := range p.Data {
		s.mem.Write(d.Addr, d.Value)
	}
	return s
}

// PC reports the address of the next instruction to execute.
func (s *Sim) PC() uint64 { return s.pc }

// Seq reports how many instructions have committed.
func (s *Sim) Seq() uint64 { return s.seq }

// Halted reports whether the program has executed a halt.
func (s *Sim) Halted() bool { return s.halted }

// Reg returns the architectural value of register r.
func (s *Sim) Reg(r uint8) uint64 { return s.regs[r] }

// SetReg sets register r (writes to the zero register are discarded).
func (s *Sim) SetReg(r uint8, v uint64) {
	if r != isa.ZeroReg {
		s.regs[r] = v
	}
}

// Mem exposes the memory image (used by tests and by workload setup).
func (s *Sim) Mem() *Memory { return s.mem }

// Step executes one instruction and returns its dynamic record.
func (s *Sim) Step() (trace.DynInst, error) {
	if s.halted {
		return trace.DynInst{}, ErrHalted
	}
	idx, ok := s.prog.IndexOf(s.pc)
	if !ok {
		return trace.DynInst{}, fmt.Errorf("funcsim: pc %#x escaped code segment", s.pc)
	}
	in := s.prog.Insts[idx]
	d := trace.DynInst{
		Seq: s.seq, PC: s.pc,
		Op: in.Op, Rd: in.Rd, Rs1: in.Rs1, Rs2: in.Rs2,
	}
	next := s.pc + isa.InstBytes
	rs1 := s.regs[in.Rs1]
	rs2 := s.regs[in.Rs2]

	switch in.Op {
	case isa.OpNop:
	case isa.OpAdd:
		s.SetReg(in.Rd, rs1+rs2)
	case isa.OpSub:
		s.SetReg(in.Rd, rs1-rs2)
	case isa.OpAddi:
		s.SetReg(in.Rd, rs1+uint64(in.Imm))
	case isa.OpLui:
		s.SetReg(in.Rd, uint64(in.Imm))
	case isa.OpAnd:
		s.SetReg(in.Rd, rs1&rs2)
	case isa.OpOr:
		s.SetReg(in.Rd, rs1|rs2)
	case isa.OpXor:
		s.SetReg(in.Rd, rs1^rs2)
	case isa.OpShl:
		s.SetReg(in.Rd, rs1<<(rs2&63))
	case isa.OpShr:
		s.SetReg(in.Rd, rs1>>(rs2&63))
	case isa.OpAndi:
		s.SetReg(in.Rd, rs1&uint64(in.Imm))
	case isa.OpShli:
		s.SetReg(in.Rd, rs1<<(uint64(in.Imm)&63))
	case isa.OpShri:
		s.SetReg(in.Rd, rs1>>(uint64(in.Imm)&63))
	case isa.OpSlt:
		if int64(rs1) < int64(rs2) {
			s.SetReg(in.Rd, 1)
		} else {
			s.SetReg(in.Rd, 0)
		}
	case isa.OpMul:
		s.SetReg(in.Rd, rs1*rs2)
	case isa.OpDiv:
		if rs2 == 0 {
			s.SetReg(in.Rd, 0)
		} else {
			s.SetReg(in.Rd, uint64(int64(rs1)/int64(rs2)))
		}
	case isa.OpRem:
		if rs2 == 0 {
			s.SetReg(in.Rd, 0)
		} else {
			s.SetReg(in.Rd, uint64(int64(rs1)%int64(rs2)))
		}
	case isa.OpFAdd:
		s.SetReg(in.Rd, math.Float64bits(math.Float64frombits(rs1)+math.Float64frombits(rs2)))
	case isa.OpFMul:
		s.SetReg(in.Rd, math.Float64bits(math.Float64frombits(rs1)*math.Float64frombits(rs2)))
	case isa.OpFDiv:
		den := math.Float64frombits(rs2)
		if den == 0 {
			s.SetReg(in.Rd, 0)
		} else {
			s.SetReg(in.Rd, math.Float64bits(math.Float64frombits(rs1)/den))
		}
	case isa.OpLd:
		addr := rs1 + uint64(in.Imm)
		d.EffAddr = addr
		s.SetReg(in.Rd, s.mem.Read(addr))
	case isa.OpSt:
		addr := rs1 + uint64(in.Imm)
		d.EffAddr = addr
		s.mem.Write(addr, rs2)
	case isa.OpBeq:
		if rs1 == rs2 {
			next = s.pc + uint64(in.Imm)
			d.Taken = true
		}
	case isa.OpBne:
		if rs1 != rs2 {
			next = s.pc + uint64(in.Imm)
			d.Taken = true
		}
	case isa.OpBlt:
		if int64(rs1) < int64(rs2) {
			next = s.pc + uint64(in.Imm)
			d.Taken = true
		}
	case isa.OpBge:
		if int64(rs1) >= int64(rs2) {
			next = s.pc + uint64(in.Imm)
			d.Taken = true
		}
	case isa.OpJmp:
		next = s.pc + uint64(in.Imm)
		d.Taken = true
	case isa.OpJr:
		next = rs1
		d.Taken = true
	case isa.OpCall:
		s.SetReg(in.Rd, s.pc+isa.InstBytes)
		next = s.pc + uint64(in.Imm)
		d.Taken = true
	case isa.OpRet:
		next = rs1
		d.Taken = true
	case isa.OpHalt:
		s.halted = true
		d.Taken = false
	default:
		return trace.DynInst{}, fmt.Errorf("funcsim: unknown opcode %d at pc %#x", in.Op, s.pc)
	}

	d.NextPC = next
	s.pc = next
	s.seq++
	return d, nil
}

// Stream adapts a Sim to batch consumers such as the timing model: each Fill
// call executes up to max instructions (bounded by the buffer) and returns
// the freshly committed records. It satisfies ooo.Source structurally without
// this package importing the timing model.
type Stream struct {
	sim *Sim
	buf []trace.DynInst
	err error
}

// NewStream returns a Stream over sim filling buf (BatchSize records when buf
// is nil).
func NewStream(sim *Sim, buf []trace.DynInst) *Stream {
	if buf == nil {
		buf = make([]trace.DynInst, BatchSize)
	}
	return &Stream{sim: sim, buf: buf}
}

// Fill executes and returns the next batch, at most max instructions. An
// empty batch ends the stream (halt or fault); Err distinguishes the two.
// The returned slice is only valid until the next Fill.
func (st *Stream) Fill(max uint64) []trace.DynInst {
	if st.err != nil {
		return nil
	}
	b := st.buf
	if max < uint64(len(b)) {
		b = b[:max]
	}
	n, err := st.sim.RunBatch(b)
	if err != nil {
		st.err = err
	}
	return b[:n]
}

// Err reports the execution fault that ended the stream, if any.
func (st *Stream) Err() error { return st.err }

// Delta is an architectural checkpoint: full register state plus every
// memory page written since the previous CaptureDelta. Applying a sequence
// of deltas in capture order reconstructs the architectural state at each
// capture point (the live-points technique of Wenisch et al.).
type Delta struct {
	Regs   [isa.NumRegs]uint64
	PC     uint64
	Seq    uint64
	Halted bool
	Pages  []PageData
}

// CaptureDelta snapshots registers and the pages dirtied since the last
// capture, clearing the dirty flags.
func (s *Sim) CaptureDelta() *Delta {
	return &Delta{
		Regs:   s.regs,
		PC:     s.pc,
		Seq:    s.seq,
		Halted: s.halted,
		Pages:  s.mem.DirtyPages(),
	}
}

// ApplyDelta installs a checkpoint's registers and pages. Deltas must be
// applied in capture order onto a simulator built from the same program.
func (s *Sim) ApplyDelta(d *Delta) {
	s.regs = d.Regs
	s.pc = d.PC
	s.seq = d.Seq
	s.halted = d.Halted
	s.mem.InstallPages(d.Pages)
}

// Run executes up to n instructions, invoking fn for each committed dynamic
// instruction, and reports how many actually executed (fewer only when the
// program halts). The record passed to fn is reused between calls; observers
// that retain it must copy it.
//
// Run is the scalar reference path; the batched RunBatch/RunBatches family
// below produces the identical instruction sequence and is what the sampling
// controller feeds from.
func (s *Sim) Run(n uint64, fn func(*trace.DynInst)) (uint64, error) {
	// One reusable record: taking its address inside the loop would make
	// every iteration's record escape to the heap.
	var d trace.DynInst
	var err error
	var i uint64
	for i = 0; i < n; i++ {
		d, err = s.Step()
		if err != nil {
			if errors.Is(err, ErrHalted) {
				return i, nil
			}
			return i, err
		}
		if fn != nil {
			fn(&d)
		}
	}
	return i, nil
}

// BatchSize is the instruction-batch granularity used by Skip, RunBatches,
// and the sampling controller: large enough to amortize per-batch dispatch,
// small enough that a batch of records stays cache-resident.
const BatchSize = 1024

// RunBatch fills buf with the next committed dynamic instructions and
// reports how many it produced. It returns fewer than len(buf) only when the
// program halts (the halt instruction is the last record delivered; later
// calls return 0) or on an execution fault. It is the specialized hot loop
// behind all batched streaming: program code is indexed directly, the zero
// register is reset with a single store per instruction, and no per-step
// error values are constructed.
func (s *Sim) RunBatch(buf []trace.DynInst) (int, error) {
	if s.halted || len(buf) == 0 {
		return 0, nil
	}
	code := s.prog.Insts
	regs := &s.regs
	m := s.mem
	pc := s.pc
	seq := s.seq
	n := 0
	for n < len(buf) {
		off := pc - prog.CodeBase
		idx := off >> 2 // isa.InstBytes == 4
		if pc < prog.CodeBase || off&3 != 0 || idx >= uint64(len(code)) {
			s.pc, s.seq = pc, seq
			return n, fmt.Errorf("funcsim: pc %#x escaped code segment", pc)
		}
		in := &code[idx]
		d := &buf[n]
		*d = trace.DynInst{
			Seq: seq, PC: pc,
			Op: in.Op, Rd: in.Rd, Rs1: in.Rs1, Rs2: in.Rs2,
		}
		next := pc + isa.InstBytes
		rs1 := regs[in.Rs1]
		rs2 := regs[in.Rs2]

		switch in.Op {
		case isa.OpNop:
		case isa.OpAdd:
			regs[in.Rd] = rs1 + rs2
		case isa.OpSub:
			regs[in.Rd] = rs1 - rs2
		case isa.OpAddi:
			regs[in.Rd] = rs1 + uint64(in.Imm)
		case isa.OpLui:
			regs[in.Rd] = uint64(in.Imm)
		case isa.OpAnd:
			regs[in.Rd] = rs1 & rs2
		case isa.OpOr:
			regs[in.Rd] = rs1 | rs2
		case isa.OpXor:
			regs[in.Rd] = rs1 ^ rs2
		case isa.OpShl:
			regs[in.Rd] = rs1 << (rs2 & 63)
		case isa.OpShr:
			regs[in.Rd] = rs1 >> (rs2 & 63)
		case isa.OpAndi:
			regs[in.Rd] = rs1 & uint64(in.Imm)
		case isa.OpShli:
			regs[in.Rd] = rs1 << (uint64(in.Imm) & 63)
		case isa.OpShri:
			regs[in.Rd] = rs1 >> (uint64(in.Imm) & 63)
		case isa.OpSlt:
			if int64(rs1) < int64(rs2) {
				regs[in.Rd] = 1
			} else {
				regs[in.Rd] = 0
			}
		case isa.OpMul:
			regs[in.Rd] = rs1 * rs2
		case isa.OpDiv:
			if rs2 == 0 {
				regs[in.Rd] = 0
			} else {
				regs[in.Rd] = uint64(int64(rs1) / int64(rs2))
			}
		case isa.OpRem:
			if rs2 == 0 {
				regs[in.Rd] = 0
			} else {
				regs[in.Rd] = uint64(int64(rs1) % int64(rs2))
			}
		case isa.OpFAdd:
			regs[in.Rd] = math.Float64bits(math.Float64frombits(rs1) + math.Float64frombits(rs2))
		case isa.OpFMul:
			regs[in.Rd] = math.Float64bits(math.Float64frombits(rs1) * math.Float64frombits(rs2))
		case isa.OpFDiv:
			den := math.Float64frombits(rs2)
			if den == 0 {
				regs[in.Rd] = 0
			} else {
				regs[in.Rd] = math.Float64bits(math.Float64frombits(rs1) / den)
			}
		case isa.OpLd:
			addr := rs1 + uint64(in.Imm)
			d.EffAddr = addr
			regs[in.Rd] = m.Read(addr)
		case isa.OpSt:
			addr := rs1 + uint64(in.Imm)
			d.EffAddr = addr
			m.Write(addr, rs2)
		case isa.OpBeq:
			if rs1 == rs2 {
				next = pc + uint64(in.Imm)
				d.Taken = true
			}
		case isa.OpBne:
			if rs1 != rs2 {
				next = pc + uint64(in.Imm)
				d.Taken = true
			}
		case isa.OpBlt:
			if int64(rs1) < int64(rs2) {
				next = pc + uint64(in.Imm)
				d.Taken = true
			}
		case isa.OpBge:
			if int64(rs1) >= int64(rs2) {
				next = pc + uint64(in.Imm)
				d.Taken = true
			}
		case isa.OpJmp:
			next = pc + uint64(in.Imm)
			d.Taken = true
		case isa.OpJr:
			next = rs1
			d.Taken = true
		case isa.OpCall:
			regs[in.Rd] = pc + isa.InstBytes
			next = pc + uint64(in.Imm)
			d.Taken = true
		case isa.OpRet:
			next = rs1
			d.Taken = true
		case isa.OpHalt:
			s.halted = true
		default:
			s.pc, s.seq = pc, seq
			return n, fmt.Errorf("funcsim: unknown opcode %d at pc %#x", in.Op, pc)
		}
		// Writes to the zero register are architecturally discarded; a single
		// unconditional store replaces the per-write branch of SetReg.
		regs[isa.ZeroReg] = 0

		d.NextPC = next
		pc = next
		seq++
		n++
		if s.halted {
			break
		}
	}
	s.pc, s.seq = pc, seq
	return n, nil
}

// RunBatches executes up to n instructions through RunBatch, invoking observe
// (when non-nil) once per filled batch, and reports how many instructions
// actually executed (fewer only when the program halts). The batch slice
// passed to observe aliases buf and is only valid until the next batch.
func (s *Sim) RunBatches(n uint64, buf []trace.DynInst, observe func([]trace.DynInst)) (uint64, error) {
	var done uint64
	for done < n {
		b := buf
		if rem := n - done; rem < uint64(len(b)) {
			b = b[:rem]
		}
		k, err := s.RunBatch(b)
		done += uint64(k)
		if err != nil {
			return done, err
		}
		if observe != nil && k > 0 {
			observe(b[:k])
		}
		if k < len(b) {
			return done, nil // halted
		}
	}
	return done, nil
}

// Skip executes n instructions discarding records; it is the fastest path for
// pure cold simulation. It runs through the batched interpreter over an
// internal buffer allocated on first use.
func (s *Sim) Skip(n uint64) (uint64, error) {
	if s.batch == nil {
		s.batch = make([]trace.DynInst, BatchSize)
	}
	return s.RunBatches(n, s.batch, nil)
}
