package funcsim

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"rsr/internal/isa"
	"rsr/internal/prog"
	"rsr/internal/trace"
)

func runProgram(t *testing.T, build func(b *prog.Builder)) *Sim {
	t.Helper()
	b := prog.NewBuilder("t")
	build(b)
	s := New(b.MustBuild())
	for !s.Halted() {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestArithmetic(t *testing.T) {
	s := runProgram(t, func(b *prog.Builder) {
		b.Li(1, 6)
		b.Li(2, 7)
		b.Op3(isa.OpAdd, 3, 1, 2)  // 13
		b.Op3(isa.OpSub, 4, 1, 2)  // -1
		b.Op3(isa.OpMul, 5, 1, 2)  // 42
		b.Op3(isa.OpDiv, 6, 2, 1)  // 1
		b.Op3(isa.OpRem, 7, 2, 1)  // 1
		b.Op3(isa.OpAnd, 8, 1, 2)  // 6
		b.Op3(isa.OpOr, 9, 1, 2)   // 7
		b.Op3(isa.OpXor, 10, 1, 2) // 1
		b.Op3(isa.OpSlt, 11, 1, 2) // 1
		b.Op3(isa.OpSlt, 12, 2, 1) // 0
		b.Halt()
	})
	want := map[uint8]uint64{3: 13, 4: ^uint64(0), 5: 42, 6: 1, 7: 1, 8: 6, 9: 7, 10: 1, 11: 1, 12: 0}
	for r, v := range want {
		if got := s.Reg(r); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestDivByZero(t *testing.T) {
	s := runProgram(t, func(b *prog.Builder) {
		b.Li(1, 9)
		b.Op3(isa.OpDiv, 2, 1, 0)
		b.Op3(isa.OpRem, 3, 1, 0)
		b.Halt()
	})
	if s.Reg(2) != 0 || s.Reg(3) != 0 {
		t.Error("division by zero should yield 0")
	}
}

func TestShifts(t *testing.T) {
	s := runProgram(t, func(b *prog.Builder) {
		b.Li(1, 1)
		b.Li(2, 10)
		b.Op3(isa.OpShl, 3, 1, 2) // 1024
		b.Li(4, 3)
		b.Op3(isa.OpShr, 5, 3, 4) // 128
		b.Halt()
	})
	if s.Reg(3) != 1024 || s.Reg(5) != 128 {
		t.Errorf("shifts wrong: %d %d", s.Reg(3), s.Reg(5))
	}
}

func TestFloatingPoint(t *testing.T) {
	f := isa.FPBase
	s := runProgram(t, func(b *prog.Builder) {
		b.Li(uint8(f), int64(math.Float64bits(1.5)))
		b.Li(uint8(f+1), int64(math.Float64bits(2.5)))
		b.Op3(isa.OpFAdd, uint8(f+2), uint8(f), uint8(f+1))
		b.Op3(isa.OpFMul, uint8(f+3), uint8(f), uint8(f+1))
		b.Op3(isa.OpFDiv, uint8(f+4), uint8(f+1), uint8(f))
		b.Op3(isa.OpFDiv, uint8(f+5), uint8(f), 0) // /0 -> 0
		b.Halt()
	})
	if got := math.Float64frombits(s.Reg(uint8(f + 2))); got != 4.0 {
		t.Errorf("fadd = %g", got)
	}
	if got := math.Float64frombits(s.Reg(uint8(f + 3))); got != 3.75 {
		t.Errorf("fmul = %g", got)
	}
	if got := math.Float64frombits(s.Reg(uint8(f + 4))); got != 2.5/1.5 {
		t.Errorf("fdiv = %g", got)
	}
	if s.Reg(uint8(f+5)) != 0 {
		t.Error("fdiv by zero should yield 0")
	}
}

func TestZeroRegisterHardwired(t *testing.T) {
	s := runProgram(t, func(b *prog.Builder) {
		b.Li(0, 99)
		b.Op3(isa.OpAdd, 1, 0, 0)
		b.Halt()
	})
	if s.Reg(0) != 0 || s.Reg(1) != 0 {
		t.Error("r0 must stay zero")
	}
}

func TestLoadStore(t *testing.T) {
	s := runProgram(t, func(b *prog.Builder) {
		b.Li(1, int64(prog.DataBase))
		b.Li(2, 0xabcd)
		b.St(1, 2, 16)
		b.Ld(3, 1, 16)
		b.Ld(4, 1, 24) // untouched -> 0
		b.Halt()
	})
	if s.Reg(3) != 0xabcd {
		t.Errorf("load = %#x", s.Reg(3))
	}
	if s.Reg(4) != 0 {
		t.Error("untouched memory should read zero")
	}
}

func TestDataSegmentInstalled(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Word(prog.DataBase+8, 777)
	b.Li(1, int64(prog.DataBase))
	b.Ld(2, 1, 8)
	b.Halt()
	s := New(b.MustBuild())
	for !s.Halted() {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if s.Reg(2) != 777 {
		t.Errorf("data init not visible: %d", s.Reg(2))
	}
}

func TestLoopAndBranchRecords(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Li(1, 3)
	b.Label("loop")
	b.Addi(1, 1, -1)
	b.Branch(isa.OpBne, 1, 0, "loop")
	b.Halt()
	s := New(b.MustBuild())
	var recs []trace.DynInst
	for !s.Halted() {
		d, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, d)
	}
	// li, then 3x (addi, bne): bne taken twice, not-taken once, halt.
	if len(recs) != 1+3*2+1 {
		t.Fatalf("executed %d instructions", len(recs))
	}
	takens := 0
	for _, d := range recs {
		if d.Op == isa.OpBne && d.Taken {
			takens++
		}
	}
	if takens != 2 {
		t.Errorf("taken branches = %d, want 2", takens)
	}
	// NextPC chain must be consistent: each record's NextPC equals the PC of
	// the next record.
	for i := 0; i+1 < len(recs); i++ {
		if recs[i].NextPC != recs[i+1].PC {
			t.Fatalf("NextPC chain broken at %d", i)
		}
	}
}

func TestCallReturn(t *testing.T) {
	b := prog.NewBuilder("t")
	link := uint8(31)
	b.Call(link, "fn")
	b.Li(5, 1) // executed after return
	b.Halt()
	b.Label("fn")
	b.Li(4, 9)
	b.Ret(link)
	s := New(b.MustBuild())
	for !s.Halted() {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if s.Reg(4) != 9 || s.Reg(5) != 1 {
		t.Errorf("call/return flow wrong: r4=%d r5=%d", s.Reg(4), s.Reg(5))
	}
}

func TestStepAfterHalt(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Halt()
	s := New(b.MustBuild())
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(); !errors.Is(err, ErrHalted) {
		t.Fatalf("want ErrHalted, got %v", err)
	}
}

func TestRunStopsAtHalt(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Nop()
	b.Nop()
	b.Halt()
	s := New(b.MustBuild())
	n, err := s.Run(100, nil)
	if err != nil || n != 3 {
		t.Fatalf("Run = %d, %v", n, err)
	}
}

func TestPCEscape(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Li(1, 0x10) // bogus target outside code
	b.Jr(1)
	s := New(b.MustBuild())
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(); err == nil {
		t.Fatal("expected escape error")
	}
}

func TestMemoryPropertyReadAfterWrite(t *testing.T) {
	m := NewMemory()
	f := func(addr, v uint64) bool {
		m.Write(addr, v)
		return m.Read(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryAlignmentSharing(t *testing.T) {
	m := NewMemory()
	m.Write(0x1000, 42)
	for off := uint64(0); off < 8; off++ {
		if m.Read(0x1000+off) != 42 {
			t.Fatalf("offset %d within word should alias", off)
		}
	}
	if m.Read(0x1008) == 42 && m.Read(0x1008) != 0 {
		t.Fatal("next word must be distinct")
	}
}

func TestMemoryCrossPage(t *testing.T) {
	m := NewMemory()
	m.Write(0xFFF8, 1)
	m.Write(0x10000, 2)
	if m.Read(0xFFF8) != 1 || m.Read(0x10000) != 2 {
		t.Fatal("cross-page values corrupted")
	}
	if m.Pages() != 2 {
		t.Fatalf("pages = %d, want 2", m.Pages())
	}
}

func TestDeterminism(t *testing.T) {
	build := func() *Sim {
		b := prog.NewBuilder("t")
		b.Li(1, 1000)
		b.Li(2, int64(prog.DataBase))
		b.Label("loop")
		b.Op3(isa.OpAdd, 3, 3, 1)
		b.St(2, 3, 0)
		b.Ld(4, 2, 0)
		b.Addi(1, 1, -1)
		b.Branch(isa.OpBne, 1, 0, "loop")
		b.Halt()
		return New(b.MustBuild())
	}
	a, bsim := build(), build()
	for !a.Halted() {
		da, err1 := a.Step()
		db, err2 := bsim.Step()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if da != db {
			t.Fatalf("divergence at seq %d: %+v vs %+v", da.Seq, da, db)
		}
	}
}
