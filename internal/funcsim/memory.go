package funcsim

import "sort"

// Memory is a sparse 64-bit-word-granular memory image. Pages are allocated
// on first touch so workloads can use gigabyte-scale address ranges with only
// their resident set backed by host memory. Accesses are aligned down to an
// 8-byte boundary; the simulated ISA has no sub-word loads/stores.
//
// Pages carry a dirty flag so checkpointing (internal/livepoints) can capture
// deltas: DirtyPages copies and clears every page written since the previous
// call.
type Memory struct {
	pages map[uint64]*memPage
	// last-page cache: workloads have strong spatial locality, so one entry
	// removes most map lookups from the hot path.
	lastKey  uint64
	lastPage *memPage
}

const (
	pageShift = 12 // 4 KiB pages
	pageWords = 1 << (pageShift - 3)
)

type memPage struct {
	words [pageWords]uint64
	dirty bool
}

// PageData is a copied page image used by snapshots.
type PageData struct {
	Key   uint64 // page index (address >> 12)
	Words [pageWords]uint64
}

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*memPage)}
}

func (m *Memory) page(addr uint64, create bool) *memPage {
	key := addr >> pageShift
	if m.lastPage != nil && m.lastKey == key {
		return m.lastPage
	}
	p := m.pages[key]
	if p == nil {
		if !create {
			return nil
		}
		p = new(memPage)
		m.pages[key] = p
	}
	m.lastKey, m.lastPage = key, p
	return p
}

// Read returns the 64-bit word at addr (aligned down). Untouched memory
// reads as zero.
func (m *Memory) Read(addr uint64) uint64 {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p.words[(addr>>3)&(pageWords-1)]
}

// Write stores a 64-bit word at addr (aligned down).
func (m *Memory) Write(addr, value uint64) {
	p := m.page(addr, true)
	p.words[(addr>>3)&(pageWords-1)] = value
	p.dirty = true
}

// Pages reports how many distinct pages have been touched by writes.
func (m *Memory) Pages() int { return len(m.pages) }

// DirtyPages copies every page written since the previous call (or since
// creation) and clears the dirty flags. Pages are returned sorted by page
// key: map iteration order is randomized, and checkpoint captures must be
// deterministic run-to-run (delta files are content-hashed by the engine).
func (m *Memory) DirtyPages() []PageData {
	var out []PageData
	for key, p := range m.pages {
		if !p.dirty {
			continue
		}
		out = append(out, PageData{Key: key, Words: p.words})
		p.dirty = false
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// InstallPages copies page images into memory (overwriting whole pages).
func (m *Memory) InstallPages(pages []PageData) {
	for i := range pages {
		p := m.page(pages[i].Key<<pageShift, true)
		p.words = pages[i].Words
		p.dirty = true
	}
}
