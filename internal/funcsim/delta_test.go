package funcsim

import (
	"testing"

	"rsr/internal/isa"
	"rsr/internal/prog"
)

func deltaProgram() *prog.Program {
	b := prog.NewBuilder("d")
	b.Li(1, int64(prog.DataBase))
	b.Li(2, 0)
	b.Label("loop")
	b.Addi(2, 2, 1)
	b.St(1, 2, 0)
	b.Addi(1, 1, 8)
	b.Jmp("loop")
	b.Halt()
	return b.MustBuild()
}

func TestCaptureApplyDeltaRoundTrip(t *testing.T) {
	s := New(deltaProgram())
	if _, err := s.Skip(1000); err != nil {
		t.Fatal(err)
	}
	d1 := s.CaptureDelta()
	if len(d1.Pages) == 0 {
		t.Fatal("first delta must carry dirtied pages")
	}
	if d1.Seq != 1000 || d1.PC != s.PC() {
		t.Fatalf("delta header wrong: %+v", d1)
	}

	// Continue, capture a second (incremental) delta.
	if _, err := s.Skip(1000); err != nil {
		t.Fatal(err)
	}
	d2 := s.CaptureDelta()
	if len(d2.Pages) == 0 {
		t.Fatal("second delta must carry newly dirtied pages")
	}

	// A fresh simulator with both deltas applied must continue identically
	// to the original.
	r := New(deltaProgram())
	r.ApplyDelta(d1)
	r.ApplyDelta(d2)
	for i := 0; i < 500; i++ {
		a, err1 := s.Step()
		b, err2 := r.Step()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a != b {
			t.Fatalf("divergence at step %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestDeltaAccessors(t *testing.T) {
	s := New(deltaProgram())
	if s.PC() != prog.CodeBase || s.Seq() != 0 {
		t.Fatal("initial accessors wrong")
	}
	if s.Mem() == nil {
		t.Fatal("Mem accessor nil")
	}
	d, err := s.Step()
	if err != nil {
		t.Fatal(err)
	}
	if d.Op != isa.OpLui || s.Seq() != 1 {
		t.Fatal("step accounting wrong")
	}
}

func TestDirtyPagesClearsFlags(t *testing.T) {
	m := NewMemory()
	m.Write(0x1000, 1)
	m.Write(0x2000, 2)
	first := m.DirtyPages()
	if len(first) != 2 {
		t.Fatalf("dirty pages = %d, want 2", len(first))
	}
	if len(m.DirtyPages()) != 0 {
		t.Fatal("flags not cleared")
	}
	m.Write(0x1000, 3)
	if len(m.DirtyPages()) != 1 {
		t.Fatal("rewrite must re-dirty one page")
	}
}

func TestInstallPagesOverwrites(t *testing.T) {
	m := NewMemory()
	m.Write(0x1000, 42)
	pages := m.DirtyPages()
	m.Write(0x1000, 99)
	m.InstallPages(pages)
	if m.Read(0x1000) != 42 {
		t.Fatalf("install did not restore: %d", m.Read(0x1000))
	}
}

func TestSkipDiscardsRecords(t *testing.T) {
	s := New(deltaProgram())
	n, err := s.Skip(123)
	if err != nil || n != 123 {
		t.Fatalf("skip = %d, %v", n, err)
	}
	if s.Seq() != 123 {
		t.Fatal("seq not advanced")
	}
}
