package funcsim

import (
	"sort"
	"testing"

	"rsr/internal/isa"
	"rsr/internal/prog"
	"rsr/internal/trace"
)

// allOpcodeProgram builds a finite program exercising every opcode family —
// arithmetic, shifts, floating point, loads/stores, taken and not-taken
// branches, calls, returns, indirect jumps — ending in a halt. The loop gives
// it enough dynamic length to span several batches.
func allOpcodeProgram() *prog.Program {
	b := prog.NewBuilder("allops")
	b.Li(1, int64(prog.DataBase))
	b.Li(2, 200) // loop counter
	b.Li(3, 3)
	b.Label("loop")
	b.Op3(isa.OpAdd, 4, 2, 3)
	b.Op3(isa.OpSub, 5, 4, 3)
	b.Op3(isa.OpMul, 6, 4, 5)
	b.Op3(isa.OpDiv, 7, 6, 3)
	b.Op3(isa.OpRem, 8, 6, 3)
	b.Op3(isa.OpAnd, 9, 4, 5)
	b.Op3(isa.OpOr, 10, 4, 5)
	b.Op3(isa.OpXor, 11, 4, 5)
	b.Op3(isa.OpShl, 12, 2, 3)
	b.Op3(isa.OpShr, 13, 12, 3)
	b.Op3(isa.OpSlt, 14, 5, 4)
	b.Andi(15, 6, 0xFF8)
	b.Shli(16, 2, 3)
	b.Shri(17, 16, 1)
	b.Op3(isa.OpFAdd, 20, 6, 7)
	b.Op3(isa.OpFMul, 21, 20, 6)
	b.Op3(isa.OpFDiv, 22, 21, 20)
	b.Op3(isa.OpAdd, 18, 1, 15)
	b.St(18, 6, 0)
	b.Ld(19, 18, 0)
	b.Call(31, "fn")
	b.Call(30, "fn2")
	b.Andi(23, 2, 1)
	b.Branch(isa.OpBeq, 23, 0, "even") // taken half the time
	b.Addi(24, 24, 1)
	b.Label("even")
	b.Branch(isa.OpBge, 4, 5, "ge") // always taken
	b.Nop()
	b.Label("ge")
	b.Branch(isa.OpBlt, 2, 3, "out") // taken only on the last iteration
	b.Addi(2, 2, -1)
	b.Branch(isa.OpBne, 2, 0, "loop")
	b.Label("out")
	b.Jmp("fin")
	b.Nop()
	b.Label("fin")
	b.Halt()
	b.Label("fn")
	b.Addi(25, 25, 1)
	b.Ret(31)
	b.Label("fn2")
	b.Addi(26, 26, 1)
	b.Jr(30)
	return b.MustBuild()
}

// loopProgram never halts: the alloc tests below need an endless stream.
func loopProgram() *prog.Program {
	b := prog.NewBuilder("loop")
	b.Li(1, int64(prog.DataBase))
	b.Li(2, 1)
	b.Label("loop")
	b.Op3(isa.OpAdd, 3, 3, 2)
	b.Shli(4, 3, 3)
	b.Andi(4, 4, 0xFF8)
	b.Op3(isa.OpAdd, 5, 1, 4)
	b.St(5, 3, 0)
	b.Ld(6, 5, 0)
	b.Branch(isa.OpBne, 2, 0, "loop")
	return b.MustBuild()
}

// collectScalar executes p to completion through the per-instruction Step
// path, the reference semantics for the batched interpreter.
func collectScalar(t *testing.T, p *prog.Program) ([]trace.DynInst, *Sim) {
	t.Helper()
	s := New(p)
	var recs []trace.DynInst
	for !s.Halted() {
		d, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, d)
	}
	return recs, s
}

// TestRunBatchMatchesStep is the batch/scalar equivalence property: for every
// buffer size, RunBatch must produce the identical record sequence, halt at
// the same point, and leave identical architectural state as Step.
func TestRunBatchMatchesStep(t *testing.T) {
	p := allOpcodeProgram()
	want, ws := collectScalar(t, p)
	for _, size := range []int{1, 2, 3, 7, 64, 1000, 1024, 4096} {
		s := New(p)
		buf := make([]trace.DynInst, size)
		var got []trace.DynInst
		for {
			n, err := s.RunBatch(buf)
			if err != nil {
				t.Fatalf("size %d: %v", size, err)
			}
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		if len(got) != len(want) {
			t.Fatalf("size %d: %d records, want %d", size, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("size %d: record %d differs:\nbatch:  %+v\nscalar: %+v", size, i, got[i], want[i])
			}
		}
		if !s.Halted() {
			t.Fatalf("size %d: not halted", size)
		}
		if s.PC() != ws.PC() || s.Seq() != ws.Seq() {
			t.Fatalf("size %d: pc/seq = %#x/%d, want %#x/%d", size, s.PC(), s.Seq(), ws.PC(), ws.Seq())
		}
		for r := 0; r < isa.NumRegs; r++ {
			if s.Reg(uint8(r)) != ws.Reg(uint8(r)) {
				t.Fatalf("size %d: r%d = %#x, want %#x", size, r, s.Reg(uint8(r)), ws.Reg(uint8(r)))
			}
		}
	}
}

// TestRunBatchesMatchesRun pins the batched driver against the scalar Run
// loop: same executed counts and same observed record stream.
func TestRunBatchesMatchesRun(t *testing.T) {
	p := allOpcodeProgram()
	for _, n := range []uint64{0, 1, 500, 1 << 20} {
		sa := New(p)
		var want []trace.DynInst
		ranA, errA := sa.Run(n, func(d *trace.DynInst) { want = append(want, *d) })
		if errA != nil {
			t.Fatal(errA)
		}
		sb := New(p)
		buf := make([]trace.DynInst, 64)
		var got []trace.DynInst
		ranB, errB := sb.RunBatches(n, buf, func(ds []trace.DynInst) { got = append(got, ds...) })
		if errB != nil {
			t.Fatal(errB)
		}
		if ranA != ranB {
			t.Fatalf("n=%d: ran %d batched vs %d scalar", n, ranB, ranA)
		}
		// Run does not deliver the halt record (Step returns ErrHalted for
		// it only after committing), RunBatch delivers it as the last record;
		// both report the same executed count. Compare the common prefix.
		if len(got) < len(want) {
			t.Fatalf("n=%d: %d observed batched vs %d scalar", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: record %d differs", n, i)
			}
		}
	}
}

func TestRunBatchAfterHalt(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Nop()
	b.Halt()
	s := New(b.MustBuild())
	buf := make([]trace.DynInst, 8)
	n, err := s.RunBatch(buf)
	if err != nil || n != 2 {
		t.Fatalf("RunBatch = %d, %v; want 2, nil", n, err)
	}
	if buf[1].Op != isa.OpHalt {
		t.Fatal("halt must be the last delivered record")
	}
	n, err = s.RunBatch(buf)
	if err != nil || n != 0 {
		t.Fatalf("RunBatch after halt = %d, %v; want 0, nil", n, err)
	}
}

func TestRunBatchPCEscape(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Li(1, 0x10) // bogus target outside the code segment
	b.Jr(1)
	s := New(b.MustBuild())
	buf := make([]trace.DynInst, 8)
	n, err := s.RunBatch(buf)
	if err == nil {
		t.Fatal("expected escape error")
	}
	if n != 2 {
		t.Fatalf("delivered %d records before the fault, want 2", n)
	}
	if s.PC() != 0x10 {
		t.Fatalf("pc = %#x, want the faulting address 0x10", s.PC())
	}
}

// TestStreamFill pins the Source contract the timing model relies on: Fill
// never exceeds max or the buffer, batches continue the sequence exactly, and
// an empty batch with nil Err means a clean halt.
func TestStreamFill(t *testing.T) {
	p := allOpcodeProgram()
	want, _ := collectScalar(t, p)
	st := NewStream(New(p), make([]trace.DynInst, 16))
	var got []trace.DynInst
	for i := 0; ; i++ {
		max := uint64(1 + i%7)
		ds := st.Fill(max)
		if uint64(len(ds)) > max || len(ds) > 16 {
			t.Fatalf("Fill(%d) returned %d records", max, len(ds))
		}
		if len(ds) == 0 {
			break
		}
		got = append(got, ds...)
	}
	if st.Err() != nil {
		t.Fatal(st.Err())
	}
	if len(got) != len(want) {
		t.Fatalf("stream produced %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestStreamFillReportsFault(t *testing.T) {
	b := prog.NewBuilder("t")
	b.Li(1, 0x10)
	b.Jr(1)
	st := NewStream(New(b.MustBuild()), nil)
	if ds := st.Fill(100); len(ds) != 2 {
		t.Fatalf("Fill = %d records, want 2", len(ds))
	}
	if st.Err() == nil {
		t.Fatal("stream must surface the execution fault")
	}
	if ds := st.Fill(100); len(ds) != 0 {
		t.Fatal("a faulted stream must stay empty")
	}
}

// TestDirtyPagesSortedDeterministic pins the checkpoint-determinism fix:
// DirtyPages must return pages in page-key order regardless of map iteration
// order, because delta captures are content-hashed by the engine.
func TestDirtyPagesSortedDeterministic(t *testing.T) {
	m := NewMemory()
	keys := []uint64{7, 3, 11, 1, 99, 42, 5, 0, 1000, 12}
	for _, k := range keys {
		m.Write(k<<pageShift, k+1)
	}
	pages := m.DirtyPages()
	if len(pages) != len(keys) {
		t.Fatalf("captured %d pages, want %d", len(pages), len(keys))
	}
	if !sort.SliceIsSorted(pages, func(i, j int) bool { return pages[i].Key < pages[j].Key }) {
		t.Fatal("DirtyPages must be sorted by page key")
	}
	if got := m.DirtyPages(); len(got) != 0 {
		t.Fatal("dirty flags must clear after capture")
	}
	// Re-dirtying in a different order yields the same sorted capture.
	for i := len(keys) - 1; i >= 0; i-- {
		m.Write(keys[i]<<pageShift+8, keys[i])
	}
	again := m.DirtyPages()
	if len(again) != len(keys) {
		t.Fatalf("recaptured %d pages, want %d", len(again), len(keys))
	}
	for i := range pages {
		if again[i].Key != pages[i].Key {
			t.Fatalf("page order diverged at %d: %d vs %d", i, again[i].Key, pages[i].Key)
		}
	}
}

// TestRunBatchZeroAllocs pins the batched interpreter as allocation-free in
// steady state (after the working set's pages exist).
func TestRunBatchZeroAllocs(t *testing.T) {
	s := New(loopProgram())
	buf := make([]trace.DynInst, BatchSize)
	if _, err := s.RunBatch(buf); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := s.RunBatch(buf); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("RunBatch allocates %.2f per batch; the hot loop must be allocation-free", avg)
	}
}

// TestSkipZeroAllocs pins Skip after its internal buffer exists.
func TestSkipZeroAllocs(t *testing.T) {
	s := New(loopProgram())
	if _, err := s.Skip(BatchSize); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := s.Skip(2 * BatchSize); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("Skip allocates %.2f per call in steady state", avg)
	}
}

// TestRunBatchesZeroAllocs pins the batched skip loop with an observer — the
// shape of the sampling controller's cold phase.
func TestRunBatchesZeroAllocs(t *testing.T) {
	s := New(loopProgram())
	buf := make([]trace.DynInst, BatchSize)
	var seen uint64
	observe := func(ds []trace.DynInst) { seen += uint64(len(ds)) }
	if _, err := s.RunBatches(4*BatchSize, buf, observe); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := s.RunBatches(2*BatchSize, buf, observe); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("RunBatches allocates %.2f per call in steady state", avg)
	}
	if seen == 0 {
		t.Fatal("observer never ran")
	}
}
