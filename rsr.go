// Package rsr is a from-scratch reproduction of "Reverse State
// Reconstruction for Sampled Microarchitectural Simulation" (Bryan, Rosier,
// Conte — ISPASS 2007).
//
// The package is the public facade over the full simulation stack in
// internal/: a small RISC ISA and functional simulator, the paper's memory
// hierarchy (WTNA L1I/L1D, WBWA L2, two shared buses), a 64K-entry Gshare
// predictor with BTB and return address stack, a cycle-level out-of-order
// superscalar timing model, cluster-sampled simulation with pluggable
// warm-up methods — no warm-up, fixed-period, SMARTS full-functional
// warming, and the paper's contribution, Reverse State Reconstruction — a
// SimPoint baseline, and an experiment harness that regenerates every table
// and figure of the paper's evaluation.
//
// Quick start:
//
//	w, _ := rsr.WorkloadByName("twolf")
//	full, _ := rsr.RunFull(w.Build(), rsr.DefaultMachine(), 2_000_000)
//	sampled, _ := rsr.RunSampled(w.Build(), rsr.DefaultMachine(),
//	    rsr.Regimen{ClusterSize: 2000, NumClusters: 50}, 2_000_000, 1,
//	    rsr.ReverseWarmup(20))
//	fmt.Println(full.Result.IPC(), sampled.IPCEstimate())
//
// # Concurrency
//
// RunFull and RunSampled build all mutable simulation state (hierarchy,
// predictor, timing model, functional simulator) fresh per call and treat
// the Program as read-only, so any number of runs may execute concurrently;
// each run is deterministic in its inputs, so concurrency never changes
// results. The Engine builds on this contract to schedule runs across a
// bounded worker pool with a content-addressed result cache:
//
//	eng := rsr.NewEngine(rsr.EngineOptions{CacheDir: "/tmp/rsr-cache"})
//	defer eng.Close()
//	res, _ := eng.Run(ctx, rsr.EngineJob{Kind: rsr.JobSampled, Workload: "twolf",
//	    Machine: rsr.DefaultMachine(), Total: 2_000_000, Seed: 1,
//	    Regimen: rsr.Regimen{ClusterSize: 2000, NumClusters: 50},
//	    Warmup: rsr.ReverseWarmup(20)})
package rsr

import (
	"rsr/internal/engine"
	"rsr/internal/experiments"
	"rsr/internal/livepoints"
	"rsr/internal/ooo"
	"rsr/internal/prog"
	"rsr/internal/sampling"
	"rsr/internal/simpoint"
	"rsr/internal/warmup"
	"rsr/internal/workload"
)

// Program is an immutable instruction stream plus initial data image,
// produced by the workload generators (or by prog.Builder for custom
// workloads via the examples).
type Program = prog.Program

// Workload names one of the nine SPEC2000-like synthetic benchmarks.
type Workload = workload.Workload

// Workloads returns all benchmarks in reporting order.
func Workloads() []Workload { return workload.All() }

// WorkloadNames returns the benchmark names in reporting order.
func WorkloadNames() []string { return workload.Names() }

// WorkloadByName looks a benchmark up by name.
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// CustomWorkloadConfig parameterizes a synthetic workload along the axes
// that govern warm-up sensitivity: working-set size, branch bias, call
// depth, and memory density.
type CustomWorkloadConfig = workload.CustomConfig

// CustomWorkload builds a parameterized synthetic workload (see
// examples/sensitivity for a working-set sweep).
func CustomWorkload(cfg CustomWorkloadConfig) (*Program, error) { return workload.Custom(cfg) }

// Machine bundles the simulated processor: core, memory hierarchy, and
// branch predictor configuration.
type Machine = sampling.MachineConfig

// DefaultMachine returns the paper's machine (§4): 8-wide fetch/dispatch,
// 4-wide issue/retire, 64-entry window, 64 KiB L1I + 32 KiB L1D (WTNA),
// 1 MiB WBWA L2, shared buses, 64K-entry Gshare, 4K-entry BTB, 8-entry RAS.
func DefaultMachine() Machine { return sampling.DefaultMachine() }

// Regimen is a cluster-sampling design: cluster size and cluster count.
type Regimen = sampling.Regimen

// WarmupSpec selects a warm-up method for sampled simulation.
type WarmupSpec = warmup.Spec

// Warm-up constructors for the paper's method families.
func NoWarmup() WarmupSpec { return WarmupSpec{Kind: warmup.KindNone} }

// SMARTSWarmup returns full-functional warming of both the cache hierarchy
// and the branch predictor (the paper's S$BP).
func SMARTSWarmup() WarmupSpec {
	return WarmupSpec{Kind: warmup.KindSMARTS, Cache: true, BPred: true}
}

// FixedPeriodWarmup functionally warms the trailing percent of each skip
// region (FP in the paper).
func FixedPeriodWarmup(percent int) WarmupSpec {
	return WarmupSpec{Kind: warmup.KindFixed, Percent: percent, Cache: true, BPred: true}
}

// ReverseWarmup returns Reverse State Reconstruction of caches and branch
// predictor at the given warm-up percentage (the paper's R$BP).
func ReverseWarmup(percent int) WarmupSpec {
	return WarmupSpec{Kind: warmup.KindReverse, Percent: percent, Cache: true, BPred: true}
}

// WarmupMatrix returns the paper's full Table 2 method matrix.
func WarmupMatrix() []WarmupSpec { return warmup.Matrix() }

// SampledResult is the outcome of a cluster-sampled run: per-cluster
// measurements, the IPC estimate (aggregated in CPI space), the 95%
// confidence interval, and cost counters.
type SampledResult = sampling.RunResult

// FullResult is a complete detailed simulation: the true-IPC baseline.
type FullResult = sampling.FullResult

// RunSampled executes a cluster-sampled simulation of the first `total`
// instructions of p with the given warm-up method. The same seed yields the
// same cluster placement for every method, keeping sampling bias constant
// across method comparisons.
func RunSampled(p *Program, m Machine, reg Regimen, total uint64, seed int64, spec WarmupSpec) (*SampledResult, error) {
	return sampling.RunSampled(p, m, reg, total, seed, spec)
}

// RunFull simulates the first `total` instructions of p cycle-accurately.
func RunFull(p *Program, m Machine, total uint64) (FullResult, error) {
	return sampling.RunFull(p, m, total)
}

// SimPointConfig parameterizes the SimPoint baseline: interval size, point
// count (the paper uses 30), k-means seed, and an optional warm-up method
// applied while fast-forwarding between simulation points.
type SimPointConfig = simpoint.Config

// SimPointResult is a SimPoint IPC estimate with its cost breakdown.
type SimPointResult = simpoint.Result

// RunSimPoint profiles p's basic-block vectors, clusters them, and simulates
// the chosen simulation points to produce a weighted IPC estimate.
func RunSimPoint(p *Program, m Machine, total uint64, cfg SimPointConfig) (*SimPointResult, error) {
	return simpoint.Estimate(p, m, total, cfg)
}

// CoreConfig is the out-of-order core's machine parameters (widths, window
// sizes, branch penalty); it is the part of the Machine that live-point
// replays may vary.
type CoreConfig = ooo.Config

// LivePoints is a captured set of per-cluster checkpoints (architectural
// delta + warmed cache/predictor state) enabling cluster replay without
// re-executing skip regions — the live-points technique of the paper's
// reference [18].
type LivePoints = livepoints.Set

// CaptureLivePoints runs one SMARTS-warmed functional pass, checkpointing at
// every cluster start. Replays under the capture machine reproduce a
// SMARTS-warmed sampled run exactly; the core configuration may vary
// between replays (see examples/designspace).
func CaptureLivePoints(p *Program, m Machine, reg Regimen, total uint64, seed int64) (*LivePoints, error) {
	return livepoints.Capture(p, m, reg, total, seed)
}

// Lab runs the paper's experiments (Table 1, Figures 5-9, the appendix)
// with a shared cache of true-IPC baselines.
type Lab = experiments.Lab

// LabConfig scales and seeds an experiment run.
type LabConfig = experiments.Config

// NewLab builds an experiment lab; use experiments at Scale 1.0 for the
// reference reproduction or smaller scales for quick looks.
func NewLab(cfg LabConfig) *Lab { return experiments.NewLab(cfg) }

// DefaultLabConfig returns the reference experiment configuration
// (20M-instruction workloads, seed 2007).
func DefaultLabConfig() LabConfig { return experiments.DefaultConfig() }

// Engine is the concurrent simulation engine: a bounded worker pool with
// single-flight deduplication and a content-addressed result cache (in
// memory, plus on disk when a cache directory is configured). The Lab and
// the rsrd daemon run on it; it is also usable directly for custom sweeps.
type Engine = engine.Engine

// EngineOptions configures worker count, cache directory, and the default
// per-job timeout.
type EngineOptions = engine.Options

// EngineJob describes one deterministic simulation run; equal jobs hash to
// the same content address and are computed at most once.
type EngineJob = engine.Job

// Job kinds for EngineJob.Kind.
const (
	JobSampled = engine.JobSampled
	JobFull    = engine.JobFull
)

// EngineResult is a finished job's outcome (sampled or full).
type EngineResult = engine.Result

// EngineTicket is the handle returned by Engine.Submit.
type EngineTicket = engine.Ticket

// EngineStats is a snapshot of scheduler and cache counters.
type EngineStats = engine.Stats

// EngineEvent is one progress notification from Engine.Subscribe.
type EngineEvent = engine.Event

// NewEngine starts an engine and its worker pool; call Close to stop it.
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }
