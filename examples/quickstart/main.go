// Quickstart: estimate a workload's IPC by cluster sampling with Reverse
// State Reconstruction warm-up, and compare it against the true IPC from a
// full detailed simulation.
package main

import (
	"fmt"
	"log"

	"rsr"
)

func main() {
	w, err := rsr.WorkloadByName("twolf")
	if err != nil {
		log.Fatal(err)
	}
	machine := rsr.DefaultMachine()
	const total = 5_000_000

	// Ground truth: simulate every instruction cycle-accurately.
	full, err := rsr.RunFull(w.Build(), machine, total)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true IPC      %.4f  (%d instructions in %v)\n",
		full.Result.IPC(), full.Result.Instructions, full.Elapsed.Round(1e6))

	// Sampled: 50 clusters of 2000 instructions, warming state between
	// clusters by scanning the skip-region log in reverse (20% suffix).
	sampled, err := rsr.RunSampled(w.Build(), machine,
		rsr.Regimen{ClusterSize: 2000, NumClusters: 50}, total, 1, rsr.ReverseWarmup(20))
	if err != nil {
		log.Fatal(err)
	}
	ci := sampled.CI()
	fmt.Printf("sampled IPC   %.4f  (95%% CI on CPI: %.4f ± %.4f) in %v\n",
		sampled.IPCEstimate(), ci.Mean, ci.Err, sampled.Elapsed.Round(1e6))
	fmt.Printf("hot fraction  %.2f%% of instructions simulated cycle-accurately\n",
		100*float64(sampled.HotInstructions)/float64(total))
	fmt.Printf("confidence    interval covers true IPC: %v\n",
		sampled.ConfidenceContains(full.Result.IPC()))
	fmt.Printf("warm-up work  %+v\n", sampled.Work)
}
