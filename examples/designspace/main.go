// Designspace explores out-of-order core configurations with live-points
// (the paper's reference [18]): one capture pass stores warmed architectural
// and microarchitectural state at every cluster start; each candidate core
// then replays only the clusters, skipping every skip region. Replaying a
// configuration costs a fraction of a fresh sampled run — the more
// configurations, the bigger the win.
package main

import (
	"fmt"
	"log"
	"time"

	"rsr"
)

func main() {
	w, err := rsr.WorkloadByName("gcc")
	if err != nil {
		log.Fatal(err)
	}
	machine := rsr.DefaultMachine()
	const total = 5_000_000
	reg := rsr.Regimen{ClusterSize: 2000, NumClusters: 40}

	points, err := rsr.CaptureLivePoints(w.Build(), machine, reg, total, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d live-points in %v\n\n", len(points.Points),
		points.CaptureElapsed.Round(time.Millisecond))

	configs := []struct {
		label string
		mod   func(c *rsr.CoreConfig)
	}{
		{"baseline (4-issue, ROB 64)", func(c *rsr.CoreConfig) {}},
		{"2-issue", func(c *rsr.CoreConfig) { c.IssueWidth = 2; c.RetireWidth = 2 }},
		{"1-issue", func(c *rsr.CoreConfig) { c.IssueWidth = 1; c.RetireWidth = 1 }},
		{"ROB 32 / IQ 16", func(c *rsr.CoreConfig) { c.ROBSize = 32; c.IQSize = 16 }},
		{"ROB 128 / IQ 64", func(c *rsr.CoreConfig) { c.ROBSize = 128; c.IQSize = 64 }},
		{"branch penalty 15", func(c *rsr.CoreConfig) { c.BranchPenalty = 15 }},
		{"2 checkpoints", func(c *rsr.CoreConfig) { c.MaxBranches = 2 }},
	}

	fmt.Printf("%-28s %8s %12s\n", "configuration", "IPC", "replay time")
	var replayTotal time.Duration
	for _, cfg := range configs {
		cpu := machine.CPU
		cfg.mod(&cpu)
		r, err := points.Replay(cpu)
		if err != nil {
			log.Fatal(err)
		}
		replayTotal += r.Elapsed
		fmt.Printf("%-28s %8.4f %12s\n", cfg.label, r.IPCEstimate(), r.Elapsed.Round(time.Millisecond))
	}

	// Cost comparison: the same sweep with fresh sampled runs re-executes
	// the whole workload functionally once per configuration.
	start := time.Now()
	if _, err := rsr.RunSampled(w.Build(), machine, reg, total, 1, rsr.SMARTSWarmup()); err != nil {
		log.Fatal(err)
	}
	oneSampled := time.Since(start)
	fmt.Printf("\ncapture (%v) + %d replays (%v)  vs  %d fresh sampled runs (≈%v)\n",
		points.CaptureElapsed.Round(time.Millisecond), len(configs),
		replayTotal.Round(time.Millisecond), len(configs),
		(oneSampled * time.Duration(len(configs))).Round(time.Millisecond))
}
