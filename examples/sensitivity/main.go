// Sensitivity sweeps a parameterized workload's data working-set size and
// measures how much cluster-sampled estimates depend on warm-up at each
// point: the cold-start problem grows with the state the workload keeps in
// the caches, which is exactly why the paper's warm-up methods exist.
package main

import (
	"fmt"
	"log"

	"rsr"
)

func main() {
	machine := rsr.DefaultMachine()
	const total = 4_000_000
	reg := rsr.Regimen{ClusterSize: 2000, NumClusters: 30}

	fmt.Printf("%-14s %10s %12s %12s %12s\n",
		"working set", "true IPC", "None RE", "R$BP20 RE", "SMARTS RE")
	for _, words := range []int64{1 << 10, 1 << 13, 1 << 16, 1 << 19} {
		p, err := rsr.CustomWorkload(rsr.CustomWorkloadConfig{
			Name:      fmt.Sprintf("ws%d", words),
			DataWords: words,
			// Mostly-biased branches keep the predictor out of the story;
			// the sweep isolates the cache axis.
			BranchBias: 7,
			Seed:       9,
		})
		if err != nil {
			log.Fatal(err)
		}
		full, err := rsr.RunFull(p, machine, total)
		if err != nil {
			log.Fatal(err)
		}
		trueIPC := full.Result.IPC()

		re := func(spec rsr.WarmupSpec) float64 {
			res, err := rsr.RunSampled(p, machine, reg, total, 1, spec)
			if err != nil {
				log.Fatal(err)
			}
			v := res.IPCEstimate()/trueIPC - 1
			if v < 0 {
				v = -v
			}
			return v
		}
		fmt.Printf("%10d KiB %10.4f %11.2f%% %11.2f%% %11.2f%%\n",
			words*8/1024, trueIPC,
			100*re(rsr.NoWarmup()),
			100*re(rsr.ReverseWarmup(20)),
			100*re(rsr.SMARTSWarmup()))
	}
}
