// Simpoint demonstrates the SimPoint baseline (the paper's Figure 9
// comparison): basic-block-vector profiling, k-means phase clustering, and
// weighted-IPC estimation from 30 simulation points — with and without
// SMARTS warm-up while fast-forwarding between points — against cluster
// sampling with Reverse State Reconstruction.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rsr"
)

func main() {
	name := flag.String("workload", "vortex", "workload name")
	total := flag.Uint64("n", 10_000_000, "dynamic instructions")
	flag.Parse()

	w, err := rsr.WorkloadByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	machine := rsr.DefaultMachine()
	full, err := rsr.RunFull(w.Build(), machine, *total)
	if err != nil {
		log.Fatal(err)
	}
	trueIPC := full.Result.IPC()
	fmt.Printf("%s: true IPC %.4f\n\n", *name, trueIPC)
	fmt.Printf("%-22s %9s %8s %12s %10s\n", "technique", "estimate", "RE", "sim time", "hot instr")

	show := func(label string, est float64, simTime time.Duration, hot uint64) {
		re := est/trueIPC - 1
		if re < 0 {
			re = -re
		}
		fmt.Printf("%-22s %9.4f %7.2f%% %12s %10d\n",
			label, est, 100*re, simTime.Round(time.Millisecond), hot)
	}

	for _, cfg := range []struct {
		label    string
		interval uint64
		warm     rsr.WarmupSpec
	}{
		{"SimPoint 50K", 50_000, rsr.NoWarmup()},
		{"SimPoint 50K-SMARTS", 50_000, rsr.SMARTSWarmup()},
		{"SimPoint 500K", 500_000, rsr.NoWarmup()},
		{"SimPoint 500K-SMARTS", 500_000, rsr.SMARTSWarmup()},
	} {
		res, err := rsr.RunSimPoint(w.Build(), machine, *total, rsr.SimPointConfig{
			IntervalSize: cfg.interval, MaxPoints: 30, Seed: 7, Warmup: cfg.warm,
		})
		if err != nil {
			log.Fatal(err)
		}
		show(cfg.label, res.IPC, res.SimElapsed, res.HotInstructions)
	}

	sampled, err := rsr.RunSampled(w.Build(), machine,
		rsr.Regimen{ClusterSize: 2000, NumClusters: 50}, *total, 1, rsr.ReverseWarmup(20))
	if err != nil {
		log.Fatal(err)
	}
	show("Sampling R$BP (20%)", sampled.IPCEstimate(), sampled.Elapsed, sampled.HotInstructions)
}
