// Customworkload shows how to assemble your own benchmark with the program
// builder and measure it under different warm-up methods: a binary-search
// kernel over a 1 MiB sorted table — branchy (each probe's direction is
// data-dependent) and cache-unfriendly (probes stride across the table).
package main

import (
	"fmt"
	"log"

	"rsr"
)

// Registers (by convention; 0 is hardwired zero, 32+ are floating point).
const (
	rT1, rT2   = 1, 2
	rLo, rHi   = 3, 4
	rMid       = 5
	rVal, rKey = 6, 7
	rLCG       = 8
	rA, rC     = 9, 10
	rBase      = 11
)

func buildBinarySearch() (*rsr.Program, error) {
	const words = 131072 // 1 MiB sorted table
	b := rsr.NewProgramBuilder("binsearch")

	// Table setup: table[i] = i*3 (sorted), written by a setup loop.
	b.Li(rBase, int64(rsr.DataBase))
	b.Li(rT1, 0)       // index (bytes)
	b.Li(rT2, words*8) // limit
	b.Li(rVal, 0)      // value
	b.Label("fill")
	b.Op3(rsr.OpAdd, rMid, rBase, rT1)
	b.St(rMid, rVal, 0)
	b.Addi(rVal, rVal, 3)
	b.Addi(rT1, rT1, 8)
	b.Branch(rsr.OpBlt, rT1, rT2, "fill")

	// LCG for pseudo-random keys.
	b.Li(rA, 6364136223846793005)
	b.Li(rC, 1442695040888963407)
	b.Li(rLCG, 0xB5)

	b.Label("search")
	// key = (lcg >> 16) % (3*words), approximately uniform over the values.
	b.Op3(rsr.OpMul, rLCG, rLCG, rA)
	b.Op3(rsr.OpAdd, rLCG, rLCG, rC)
	b.Shri(rKey, rLCG, 16)
	b.Andi(rKey, rKey, words*4-1)
	b.Li(rLo, 0)
	b.Li(rHi, words)
	b.Label("loop")
	// mid = (lo + hi) / 2
	b.Op3(rsr.OpAdd, rMid, rLo, rHi)
	b.Shri(rMid, rMid, 1)
	// val = table[mid]
	b.Shli(rT1, rMid, 3)
	b.Op3(rsr.OpAdd, rT1, rT1, rBase)
	b.Ld(rVal, rT1, 0)
	// if val < key: lo = mid+1 else hi = mid
	b.Branch(rsr.OpBge, rVal, rKey, "upper")
	b.Addi(rLo, rMid, 1)
	b.Jmp("next")
	b.Label("upper")
	b.Op3(rsr.OpOr, rHi, rMid, 0)
	b.Label("next")
	b.Branch(rsr.OpBlt, rLo, rHi, "loop")
	b.Jmp("search")
	b.Halt()
	return b.Build()
}

func main() {
	p, err := buildBinarySearch()
	if err != nil {
		log.Fatal(err)
	}
	machine := rsr.DefaultMachine()
	const total = 5_000_000

	full, err := rsr.RunFull(p, machine, total)
	if err != nil {
		log.Fatal(err)
	}
	trueIPC := full.Result.IPC()
	fmt.Printf("binary search: true IPC %.4f, %.1f%% branches mispredicted in full run\n\n",
		trueIPC, 100*float64(full.Result.Mispredicts)/float64(full.Result.Branches))

	reg := rsr.Regimen{ClusterSize: 2000, NumClusters: 40}
	for _, spec := range []rsr.WarmupSpec{
		rsr.NoWarmup(), rsr.SMARTSWarmup(), rsr.ReverseWarmup(20), rsr.ReverseWarmup(100),
	} {
		res, err := rsr.RunSampled(p, machine, reg, total, 1, spec)
		if err != nil {
			log.Fatal(err)
		}
		est := res.IPCEstimate()
		re := est/trueIPC - 1
		if re < 0 {
			re = -re
		}
		fmt.Printf("%-12s estimate %.4f  RE %5.2f%%  time %v\n",
			res.Method, est, 100*re, res.Elapsed.Round(1e6))
	}
}
