// Warmupcompare reproduces the paper's central comparison on one workload:
// every warm-up method's accuracy (relative error against the true IPC) and
// cost (wall clock plus deterministic work counters), including the speedup
// of Reverse State Reconstruction over SMARTS.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"rsr"
)

func main() {
	name := flag.String("workload", "gcc", "workload name")
	total := flag.Uint64("n", 10_000_000, "dynamic instructions")
	flag.Parse()

	w, err := rsr.WorkloadByName(*name)
	if err != nil {
		log.Fatal(err)
	}
	machine := rsr.DefaultMachine()

	full, err := rsr.RunFull(w.Build(), machine, *total)
	if err != nil {
		log.Fatal(err)
	}
	trueIPC := full.Result.IPC()
	fmt.Printf("%s: true IPC %.4f (full run %v)\n\n", *name, trueIPC, full.Elapsed.Round(time.Millisecond))
	fmt.Printf("%-12s %9s %8s %10s %9s %12s %12s\n",
		"method", "estimate", "RE", "time", "vs S$BP", "warm ops", "recon ops")

	reg := rsr.Regimen{ClusterSize: 2000, NumClusters: 50}
	var smartsTime time.Duration
	for _, spec := range []rsr.WarmupSpec{
		rsr.NoWarmup(),
		rsr.SMARTSWarmup(),
		rsr.FixedPeriodWarmup(20),
		rsr.ReverseWarmup(20),
		rsr.ReverseWarmup(40),
		rsr.ReverseWarmup(80),
		rsr.ReverseWarmup(100),
	} {
		res, err := rsr.RunSampled(w.Build(), machine, reg, *total, 1, spec)
		if err != nil {
			log.Fatal(err)
		}
		if spec == rsr.SMARTSWarmup() {
			smartsTime = res.Elapsed
		}
		est := res.IPCEstimate()
		re := est/trueIPC - 1
		if re < 0 {
			re = -re
		}
		speedup := "-"
		if smartsTime > 0 && res.Elapsed > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(smartsTime)/float64(res.Elapsed))
		}
		fmt.Printf("%-12s %9.4f %7.2f%% %10s %9s %12d %12d\n",
			res.Method, est, 100*re, res.Elapsed.Round(time.Millisecond), speedup,
			res.Work.WarmOps, res.Work.ReconScanned+res.Work.ReconApplied)
	}
}
