package rsr

// One benchmark per paper table/figure. Each drives the same experiment code
// as `cmd/rsr` at a reduced scale so the full suite stays benchable; run
// `go run ./cmd/rsr all` (scale 1.0) for the reference reproduction recorded
// in EXPERIMENTS.md. Custom metrics report the accuracy side: avgRE% is the
// mean relative IPC error of the methods under test.

import (
	"fmt"
	"runtime"
	"testing"

	"rsr/internal/core"
	"rsr/internal/experiments"
	"rsr/internal/funcsim"
	"rsr/internal/livepoints"
	"rsr/internal/mem"
	"rsr/internal/sampling"
	"rsr/internal/trace"
	"rsr/internal/warmup"
	"rsr/internal/workload"
)

// reconstruct runs one reverse cache-reconstruction pass.
func reconstruct(h *mem.Hierarchy, log []trace.MemRecord, percent int) core.CacheReconStats {
	return core.ReconstructCaches(h, log, percent)
}

// benchCfg returns a reduced-scale experiment configuration: small enough to
// iterate, large enough that skip regions carry meaningful warm-up state.
func benchCfg(workloads ...string) experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Scale = 0.25 // 5M instructions
	cfg.Workloads = workloads
	return cfg
}

func reportAvgRE(b *testing.B, avgs []experiments.MethodAverage) {
	b.Helper()
	var re float64
	for _, a := range avgs {
		re += a.MeanRelErr
	}
	b.ReportMetric(100*re/float64(len(avgs)), "avgRE%")
}

// BenchmarkTable1TrueIPC regenerates Table 1: full detailed simulation of
// each workload.
func BenchmarkTable1TrueIPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(benchCfg("twolf", "parser", "gcc"))
		rows, err := lab.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("short table")
		}
	}
}

// BenchmarkFigure5CacheWarmup regenerates the cache-only warm-up comparison
// (R$ percentages vs S$).
func BenchmarkFigure5CacheWarmup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(benchCfg("gcc", "twolf"))
		f, err := lab.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		reportAvgRE(b, f.Averages)
	}
}

// BenchmarkFigure6BpredWarmup regenerates the predictor-only warm-up
// comparison (RBP vs SBP).
func BenchmarkFigure6BpredWarmup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(benchCfg("parser", "twolf"))
		f, err := lab.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		reportAvgRE(b, f.Averages)
	}
}

// BenchmarkFigure7Combined regenerates the combined cache+predictor
// comparison (R$BP, FP, None, S$BP).
func BenchmarkFigure7Combined(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(benchCfg("twolf"))
		f, err := lab.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		reportAvgRE(b, f.Averages)
	}
}

// BenchmarkFigure8PerBenchmark regenerates the per-benchmark Reverse vs
// SMARTS detail.
func BenchmarkFigure8PerBenchmark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(benchCfg("gcc", "parser"))
		f, err := lab.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		reportAvgRE(b, f.Averages)
	}
}

// BenchmarkFigure9SimPoint regenerates the SimPoint comparison.
func BenchmarkFigure9SimPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(benchCfg("twolf"))
		f, err := lab.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		if len(f.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkAppendixMatrix runs the full 16-method Table 2 matrix on one
// workload (the appendix tables are this matrix over all workloads).
func BenchmarkAppendixMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(benchCfg("twolf"))
		cells, err := lab.Appendix()
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 16 {
			b.Fatal("short matrix")
		}
	}
}

// BenchmarkTable2SweepParallelism runs a small Table-2 sweep (the full
// 16-method matrix on two workloads) sequentially and across the engine's
// full worker pool — the wall-clock form of the engine's speedup. Each
// iteration builds a fresh Lab so nothing is served from cache.
func BenchmarkTable2SweepParallelism(b *testing.B) {
	pool := 4 * runtime.GOMAXPROCS(0) // oversubscribe so the arm differs even on one core
	for _, par := range []int{1, pool} {
		b.Run(fmt.Sprintf("parallel-%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchCfg("twolf", "parser")
				cfg.Parallelism = par
				lab := experiments.NewLab(cfg)
				cells, err := lab.Appendix()
				lab.Close()
				if err != nil {
					b.Fatal(err)
				}
				if len(cells) != 32 {
					b.Fatal("short matrix")
				}
			}
		})
	}
}

// --- Microbenchmarks of the substrates ---

// BenchmarkDetailedSimulation measures the cycle-level timing model in
// instructions per second.
func BenchmarkDetailedSimulation(b *testing.B) {
	w, _ := workload.ByName("twolf")
	p := w.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sampling.RunFull(p, sampling.DefaultMachine(), 500_000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(500_000*b.N)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkFunctionalSimulation measures the architectural interpreter.
func BenchmarkFunctionalSimulation(b *testing.B) {
	w, _ := workload.ByName("twolf")
	p := w.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs := funcsim.New(p)
		if _, err := fs.Skip(1_000_000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(1_000_000*b.N)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkReverseCacheReconstruction measures the §3.1 reverse pass against
// functionally applying the same log (the SMARTS-style cost), isolating the
// speedup mechanism the paper describes.
func BenchmarkReverseCacheReconstruction(b *testing.B) {
	log := make([]trace.MemRecord, 200_000)
	lcg := uint64(12345)
	for i := range log {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		log[i] = trace.MemRecord{Addr: (lcg >> 20) % (8 << 20), IsStore: i%3 == 0}
	}
	b.Run("reverse20", func(b *testing.B) {
		h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
		for i := 0; i < b.N; i++ {
			// ReconstructCaches itself takes the newest 20%.
			_ = reconstruct(h, log, 20)
		}
	})
	b.Run("reverse100", func(b *testing.B) {
		h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
		for i := 0; i < b.N; i++ {
			_ = reconstruct(h, log, 100)
		}
	})
	b.Run("functionalFull", func(b *testing.B) {
		h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
		for i := 0; i < b.N; i++ {
			for j := range log {
				h.WarmData(log[j].Addr, log[j].IsStore)
			}
		}
	})
}

// BenchmarkLivePointsReplay compares re-measuring all clusters from captured
// live-points against a fresh sampled run — the speedup of reference [18].
func BenchmarkLivePointsReplay(b *testing.B) {
	w, _ := workload.ByName("gcc")
	p := w.Build()
	m := sampling.DefaultMachine()
	reg := sampling.Regimen{ClusterSize: 2000, NumClusters: 20}
	set, err := livepoints.Capture(p, m, reg, 2_000_000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := set.Replay(m.CPU); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("freshSampledRun", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spec := warmup.Spec{Kind: warmup.KindSMARTS, Cache: true, BPred: true}
			if _, err := sampling.RunSampled(p, m, reg, 2_000_000, 1, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWarmupMethodsEndToEnd compares total sampled-run cost per warm-up
// method on one workload — the wall-clock form of the paper's speedup claim.
func BenchmarkWarmupMethodsEndToEnd(b *testing.B) {
	for _, spec := range []warmup.Spec{
		{Kind: warmup.KindNone},
		{Kind: warmup.KindSMARTS, Cache: true, BPred: true},
		{Kind: warmup.KindReverse, Percent: 20, Cache: true, BPred: true},
		{Kind: warmup.KindReverse, Percent: 100, Cache: true, BPred: true},
	} {
		spec := spec
		b.Run(spec.Label(), func(b *testing.B) {
			w, _ := workload.ByName("gcc")
			p := w.Build()
			reg := sampling.Regimen{ClusterSize: 2000, NumClusters: 20}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sampling.RunSampled(p, sampling.DefaultMachine(), reg, 2_000_000, 1, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation benchmarks for the design choices DESIGN.md calls out ---

// BenchmarkAblationReuse compares the profiling-based MRRL/BLRL methods
// against RSR and SMARTS (cost includes their profiling pass).
func BenchmarkAblationReuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(benchCfg("twolf"))
		cells, err := lab.AblationReuse(90)
		if err != nil {
			b.Fatal(err)
		}
		if len(cells) != 4 {
			b.Fatal("unexpected cell count")
		}
	}
}

// BenchmarkAblationInference measures the Figure 3 counter-inference rule
// on/off.
func BenchmarkAblationInference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(benchCfg("parser"))
		if _, err := lab.AblationInference(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDetailedWarm measures hot-start detailed warming against
// functional warming.
func BenchmarkAblationDetailedWarm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(benchCfg("twolf"))
		if _, err := lab.AblationDetailedWarm(8000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBusContention measures the bus arbitration model's
// contribution to timing.
func BenchmarkAblationBusContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lab := experiments.NewLab(benchCfg("ammp"))
		rows, err := lab.AblationBusContention()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rows[0].Inflation, "inflation%")
	}
}

// BenchmarkAblationLSQForwarding measures the LSQ model's net effect: the
// default model pays conservative memory disambiguation (loads wait behind
// unresolved store addresses) and earns store-to-load forwarding; the
// ablated model does neither. On stack-heavy code the disambiguation cost
// can outweigh the forwarding win — which is the point of measuring it.
func BenchmarkAblationLSQForwarding(b *testing.B) {
	w, _ := workload.ByName("perl") // heavy stack save/restore traffic
	p := w.Build()
	for _, ablate := range []bool{false, true} {
		name := "forwarding"
		if ablate {
			name = "ablated"
		}
		b.Run(name, func(b *testing.B) {
			m := sampling.DefaultMachine()
			m.CPU.NoLSQForwarding = ablate
			for i := 0; i < b.N; i++ {
				r, err := sampling.RunFull(p, m, 1_000_000)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Result.IPC(), "IPC")
			}
		})
	}
}
