package rsr

import (
	"rsr/internal/asm"
	"rsr/internal/isa"
	"rsr/internal/prog"
)

// ParseAssembly assembles the textual instruction syntax (see internal/asm's
// package documentation for the grammar) into a runnable Program.
func ParseAssembly(name, src string) (*Program, error) { return asm.Parse(name, src) }

// ProgramBuilder assembles custom workloads: emit instructions, bind labels,
// and Build a Program runnable by RunFull and RunSampled. See
// examples/customworkload for a complete program.
type ProgramBuilder = prog.Builder

// NewProgramBuilder returns a builder for a custom program.
func NewProgramBuilder(name string) *ProgramBuilder { return prog.NewBuilder(name) }

// Op is an instruction opcode for ProgramBuilder.Op3/Branch.
type Op = isa.Op

// Instruction opcodes re-exported for custom workloads.
const (
	OpAdd  = isa.OpAdd
	OpSub  = isa.OpSub
	OpAnd  = isa.OpAnd
	OpOr   = isa.OpOr
	OpXor  = isa.OpXor
	OpShl  = isa.OpShl
	OpShr  = isa.OpShr
	OpSlt  = isa.OpSlt
	OpMul  = isa.OpMul
	OpDiv  = isa.OpDiv
	OpRem  = isa.OpRem
	OpFAdd = isa.OpFAdd
	OpFMul = isa.OpFMul
	OpFDiv = isa.OpFDiv
	OpBeq  = isa.OpBeq
	OpBne  = isa.OpBne
	OpBlt  = isa.OpBlt
	OpBge  = isa.OpBge
)

// DataBase is the first byte address of the conventional data segment used
// by generated programs.
const DataBase = prog.DataBase
