module rsr

go 1.22
