// Command rsrtrace inspects workloads: disassembles their static code,
// dumps a window of the committed dynamic stream, or summarizes stream
// statistics. It is the debugging companion to the simulation stack.
//
// Usage:
//
//	rsrtrace -workload mcf disasm            # static disassembly
//	rsrtrace -workload mcf -skip 1e6 -n 40 trace   # dynamic window
//	rsrtrace -workload mcf -n 2e6 stats      # stream statistics
//	rsrtrace -file prog.s -n 100 trace       # assemble and trace a .s file
//	rsrtrace -workload mcf -o mcf.txt disasm # write to a file instead of stdout
//	rsrtrace -merge a.json b.json -o all.json  # merge Chrome traces, one
//	                                         process-lane block per input
//	                                         file, timestamps untouched
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"rsr/internal/asm"
	"rsr/internal/funcsim"
	"rsr/internal/isa"
	"rsr/internal/prog"
	"rsr/internal/trace"
	"rsr/internal/workload"
)

// out is where every command writes; -o redirects it from stdout to a file.
var out io.Writer = os.Stdout

func main() {
	name := flag.String("workload", "twolf", "workload name")
	file := flag.String("file", "", "assemble this .s file instead of a built-in workload")
	skip := flag.Float64("skip", 0, "instructions to skip before tracing")
	n := flag.Float64("n", 30, "instructions to trace / profile")
	outPath := flag.String("o", "", "write output to `file` instead of stdout")
	merge := flag.Bool("merge", false, "merge the Chrome trace files given as arguments into one (distinct process lanes per file; no timestamp rebasing)")
	flag.Parse()

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rsrtrace: -o:", err)
			os.Exit(1)
		}
		bw := bufio.NewWriter(f)
		out = bw
		// The error paths exit via os.Exit, so flush explicitly after the
		// command instead of deferring.
		defer func() {
			if err := bw.Flush(); err == nil {
				err = f.Close()
				if err != nil {
					fmt.Fprintln(os.Stderr, "rsrtrace: -o:", err)
					os.Exit(1)
				}
			} else {
				f.Close()
				fmt.Fprintln(os.Stderr, "rsrtrace: -o:", err)
				os.Exit(1)
			}
		}()
	}

	if *merge {
		if err := runMerge(flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "rsrtrace: -merge:", err)
			os.Exit(1)
		}
		return // the -o defer above flushes
	}

	var p *prog.Program
	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rsrtrace:", err)
			os.Exit(1)
		}
		p, err = asm.Parse(*file, string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "rsrtrace:", err)
			os.Exit(1)
		}
	} else {
		w, err := workload.ByName(*name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rsrtrace:", err)
			os.Exit(1)
		}
		p = w.Build()
	}

	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "stats"
	}
	switch cmd {
	case "disasm":
		disasm(p)
	case "trace":
		runTrace(p, uint64(*skip), uint64(*n))
	case "stats":
		runStats(p, uint64(*n))
	default:
		fmt.Fprintf(os.Stderr, "rsrtrace: unknown command %q (disasm, trace, stats)\n", cmd)
		os.Exit(1)
	}
}

func disasm(p *prog.Program) {
	fmt.Fprintf(out, "%s: %d static instructions, %d data words\n", p.Name, p.Len(), len(p.Data))
	for i, in := range p.Insts {
		fmt.Fprintf(out, "%#08x  %s\n", prog.PCOf(i), in)
	}
}

func runTrace(p *prog.Program, skip, n uint64) {
	fs := funcsim.New(p)
	if _, err := fs.Skip(skip); err != nil {
		fmt.Fprintln(os.Stderr, "rsrtrace:", err)
		os.Exit(1)
	}
	_, err := fs.Run(n, func(d *trace.DynInst) {
		extra := ""
		switch {
		case d.IsMem():
			extra = fmt.Sprintf("  [addr %#x]", d.EffAddr)
		case d.IsBranch() && d.Taken:
			extra = fmt.Sprintf("  -> %#x", d.NextPC)
		case d.IsBranch():
			extra = "  (not taken)"
		}
		in, _ := p.Fetch(d.PC)
		fmt.Fprintf(out, "%12d  %#08x  %-28s%s\n", d.Seq, d.PC, in.String(), extra)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsrtrace:", err)
		os.Exit(1)
	}
}

func runStats(p *prog.Program, n uint64) {
	fs := funcsim.New(p)
	var classes [16]uint64
	lines := map[uint64]struct{}{}
	pcs := map[uint64]struct{}{}
	var taken, cond uint64
	_, err := fs.Run(n, func(d *trace.DynInst) {
		classes[d.Op.Class()]++
		pcs[d.PC] = struct{}{}
		if d.IsMem() {
			lines[d.EffAddr>>6] = struct{}{}
		}
		if d.Op.IsConditional() {
			cond++
			if d.Taken {
				taken++
			}
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsrtrace:", err)
		os.Exit(1)
	}
	names := map[isa.Class]string{
		isa.ClassNop: "nop", isa.ClassIntALU: "int-alu", isa.ClassIntMul: "int-mul",
		isa.ClassIntDiv: "int-div", isa.ClassFPALU: "fp-alu", isa.ClassFPMul: "fp-mul",
		isa.ClassFPDiv: "fp-div", isa.ClassLoad: "load", isa.ClassStore: "store",
		isa.ClassBranch: "branch", isa.ClassJump: "jump", isa.ClassCall: "call",
		isa.ClassReturn: "return", isa.ClassJumpIndirect: "jump-ind", isa.ClassHalt: "halt",
	}
	type row struct {
		name  string
		count uint64
	}
	var rows []row
	var total uint64
	for c, cnt := range classes {
		if cnt > 0 {
			rows = append(rows, row{names[isa.Class(c)], cnt})
			total += cnt
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].count > rows[j].count })
	fmt.Fprintf(out, "%s: %d instructions\n", p.Name, total)
	for _, r := range rows {
		fmt.Fprintf(out, "  %-10s %12d  %5.1f%%\n", r.name, r.count, 100*float64(r.count)/float64(total))
	}
	fmt.Fprintf(out, "code footprint  %d static instructions touched (%d bytes)\n",
		len(pcs), len(pcs)*isa.InstBytes)
	fmt.Fprintf(out, "data footprint  %d cache lines touched (%d KiB)\n", len(lines), len(lines)*64/1024)
	if cond > 0 {
		fmt.Fprintf(out, "branch bias     %.1f%% of conditionals taken\n", 100*float64(taken)/float64(cond))
	}
}
