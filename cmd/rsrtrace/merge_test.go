package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// writeTraceFile drops a Chrome trace file (object form) for merge tests.
func writeTraceFile(t *testing.T, dir, name string, events []map[string]any) string {
	t.Helper()
	b, err := json.Marshal(map[string]any{"traceEvents": events})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMergeTracesDistinctLanes(t *testing.T) {
	dir := t.TempDir()
	a := writeTraceFile(t, dir, "a.json", []map[string]any{
		{"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
			"args": map[string]any{"name": "node worker-a"}},
		{"ph": "X", "name": "job-run", "cat": "engine", "pid": 1, "tid": 7,
			"ts": 100.0, "dur": 50.0},
	})
	b := writeTraceFile(t, dir, "b.json", []map[string]any{
		{"ph": "X", "name": "job-run", "cat": "engine", "pid": 1, "tid": 3,
			"ts": 90.0, "dur": 20.0},
	})

	ta, err := readTrace(a)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := readTrace(b)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mergeTraces(&buf, []namedTrace{ta, tb}); err != nil {
		t.Fatal(err)
	}

	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("merged trace not parseable: %v\n%s", err, buf.String())
	}

	// Both files used pid 1; the merge must keep their lanes apart.
	pids := map[float64]bool{}
	names := map[string]float64{} // process_name -> pid
	var spans int
	for _, ev := range out.TraceEvents {
		pid, _ := ev["pid"].(float64)
		switch ev["ph"] {
		case "X":
			spans++
			pids[pid] = true
			if ev["ts"] != 100.0 && ev["ts"] != 90.0 {
				t.Errorf("timestamp rebased in offline merge: %v", ev["ts"])
			}
		case "M":
			args := ev["args"].(map[string]any)
			names[args["name"].(string)] = pid
		}
	}
	if spans != 2 || len(pids) != 2 {
		t.Fatalf("want 2 spans on 2 distinct pids, got %d spans on %v", spans, pids)
	}
	if _, ok := names["a.json: node worker-a"]; !ok {
		t.Errorf("a.json lane lost its original process name: %v", names)
	}
	if _, ok := names["b.json"]; !ok {
		t.Errorf("b.json lane not named after its file: %v", names)
	}
}

func TestReadTraceBareArray(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "arr.json")
	if err := os.WriteFile(path,
		[]byte(`[{"ph":"X","name":"s","pid":2,"tid":1,"ts":1,"dur":1}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := readTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.events) != 1 {
		t.Fatalf("want 1 event, got %d", len(tr.events))
	}
}
