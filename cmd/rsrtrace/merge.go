package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Offline Chrome-trace merging: `rsrtrace -merge a.json b.json` folds several
// trace files (rsr -trace-out output, or a node's /v1/trace rendered to a
// Chrome trace) into one, giving each input file its own process-lane block
// so the sources stay visually distinct in the viewer. Unlike the
// coordinator's live fabric merge, timestamps are NOT rebased — offline the
// clock relationship between the files is unknown, and honest raw
// timestamps beat a fabricated alignment.

// namedTrace is one parsed input file.
type namedTrace struct {
	name   string
	events []map[string]any
}

// readTrace parses one Chrome trace-event JSON file (object form with a
// traceEvents array, or a bare event array).
func readTrace(path string) (namedTrace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return namedTrace{}, err
	}
	var obj struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &obj); err != nil || obj.TraceEvents == nil {
		var arr []map[string]any
		if aerr := json.Unmarshal(b, &arr); aerr != nil {
			return namedTrace{}, fmt.Errorf("%s: not a Chrome trace (object or array form): %v", path, err)
		}
		obj.TraceEvents = arr
	}
	return namedTrace{name: filepath.Base(path), events: obj.TraceEvents}, nil
}

// mergeTraces writes one combined Chrome trace. Every (input file, original
// pid) pair becomes a fresh pid in the output, so lanes from different files
// never collide; each remapped pid keeps its original process_name metadata
// when present, prefixed with the source file, and gets a file-named lane
// otherwise.
func mergeTraces(w io.Writer, traces []namedTrace) error {
	type lane struct{ file, origName string }
	lanes := map[int]*lane{} // new pid -> provenance
	var out []map[string]any
	nextPid := 0
	for _, tr := range traces {
		pidMap := map[float64]int{}
		remap := func(old float64) int {
			p, ok := pidMap[old]
			if !ok {
				nextPid++
				p = nextPid
				pidMap[old] = p
				lanes[p] = &lane{file: tr.name}
			}
			return p
		}
		for _, ev := range tr.events {
			old, _ := ev["pid"].(float64)
			p := remap(old)
			// process_name metadata is captured into the lane table (and
			// dropped): the merged trace re-emits one canonical name per
			// lane below, so inputs with or without metadata render alike.
			if ev["ph"] == "M" && ev["name"] == "process_name" {
				if args, ok := ev["args"].(map[string]any); ok {
					if n, ok := args["name"].(string); ok {
						lanes[p].origName = n
					}
				}
				continue
			}
			cp := make(map[string]any, len(ev))
			for k, v := range ev {
				cp[k] = v
			}
			cp["pid"] = p
			out = append(out, cp)
		}
	}

	pids := make([]int, 0, len(lanes))
	for p := range lanes {
		pids = append(pids, p)
	}
	sort.Ints(pids)
	meta := make([]map[string]any, 0, len(pids))
	for _, p := range pids {
		l := lanes[p]
		name := l.file
		if l.origName != "" {
			name = l.file + ": " + l.origName
		}
		meta = append(meta, map[string]any{
			"ph": "M", "name": "process_name", "pid": p, "tid": 0,
			"args": map[string]any{"name": name},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents": append(meta, out...),
	})
}

// runMerge implements `rsrtrace -merge file...`, writing to the shared out
// writer (-o redirects it).
func runMerge(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("-merge needs at least one trace file")
	}
	traces := make([]namedTrace, 0, len(paths))
	for _, p := range paths {
		tr, err := readTrace(p)
		if err != nil {
			return err
		}
		traces = append(traces, tr)
	}
	return mergeTraces(out, traces)
}
