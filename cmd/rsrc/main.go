// Command rsrc is the sweep-fabric coordinator: it accepts simulation jobs,
// splits them across peer-mode rsrd workers, and serves the shared
// content-addressed store that carries result blobs and pre-pass checkpoint
// chains between nodes.
//
// Usage:
//
//	rsrc [-addr :9900] [-casdir DIR] [-journal DIR] [-readopt-window D]
//	     [-queue N] [-heartbeat-timeout D] [-hedge-after D] [-max-requeues N]
//	     [-retain D] [-drain-timeout D]
//
// API:
//
//	POST /v1/jobs            submit one engine job; 503 + Retry-After when
//	                         every worker queue is full (backpressure)
//	GET  /v1/jobs/{id}       job status, and the result once finished
//	POST /v1/sweeps          submit a batch (idempotent on retry)
//	GET  /v1/sweeps/{id}     sweep progress
//	GET  /v1/sweeps/{id}/trace merged fabric Chrome trace for a tagged sweep:
//	                         every participating node's span ring, clock-
//	                         rebased onto the coordinator's timeline, one
//	                         process lane per node
//	GET  /v1/status          live cluster status snapshot (feeds `rsr top`)
//	POST /v1/peers/heartbeat worker liveness + engine depth (409 on skew)
//	POST /v1/peers/pull      lease one work item (204 when idle)
//	POST /v1/peers/complete  report an execution outcome
//	/v1/cas/...              the shared content-addressed store
//	GET  /v1/version         build info + cluster protocol version
//	GET  /metrics            coordinator gauges plus federated worker
//	                         families re-exported with a node label
//	GET  /healthz, /readyz   liveness / readiness
//
// Scheduling is pull-based with bounded per-worker queues, work stealing
// from slow nodes, hedged requests against stragglers, and heartbeat-driven
// requeue on node loss; every job is deterministic and content-addressed,
// so a sweep's results are byte-identical to a single-node run no matter
// how the fabric moves the work (see internal/cluster).
//
// With -journal, every scheduling decision is fsync'd to an append-only
// write-ahead log before it takes effect, and a restarted coordinator
// replays the log to resume its sweeps: finished jobs are served from their
// CAS result blobs (pair -journal with -casdir, or replayed results are
// recomputed), and live workers re-attach in-flight leases during the
// -readopt-window, so a crash or redeploy neither loses nor re-runs work.
//
// Start workers with:
//
//	rsrd -addr :8746 -peer -coordinator http://host:9900
//
// and point clients at the fabric with:
//
//	rsr -cluster http://host:9900 sweep -workload twolf
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rsr/internal/cas"
	"rsr/internal/cluster"
	"rsr/internal/obs"
)

func main() {
	addr := flag.String("addr", ":9900", "listen address")
	casDir := flag.String("casdir", "", "content-addressed store directory (empty = memory-only)")
	journalDir := flag.String("journal", "", "write-ahead journal directory; a restart replays it and resumes sweeps (empty = in-memory scheduling only)")
	readoptWindow := flag.Duration("readopt-window", 0, "post-restart window for workers to re-attach journal-recovered leases (0 = 2x heartbeat-timeout, <0 requeues immediately)")
	queue := flag.Int("queue", 0, "per-worker queue bound (0 = 32); full queues refuse submissions with 503")
	hbTimeout := flag.Duration("heartbeat-timeout", 5*time.Second, "reap workers silent this long and requeue their work")
	hedgeAfter := flag.Duration("hedge-after", 30*time.Second, "duplicate a lease running longer than this onto an idle worker (<0 disables)")
	maxRequeues := flag.Int("max-requeues", 3, "per-item requeue budget across transient failures and node loss")
	retain := flag.Duration("retain", time.Hour, "prune finished jobs, sweeps, and their result blobs this long after completion (<0 retains forever)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on finishing scheduled work after SIGTERM/SIGINT")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		slog.Error("bad -log-level", "value", *logLevel, "err", err)
		os.Exit(2)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(log)

	reg := obs.NewRegistry()
	var journal *cluster.Journal
	if *journalDir != "" {
		j, err := cluster.OpenJournal(*journalDir, log)
		if err != nil {
			log.Error("journal open failed", "dir", *journalDir, "err", err)
			os.Exit(1)
		}
		journal = j
	}
	co := cluster.NewCoordinator(cluster.CoordinatorOptions{
		Tracer:           obs.NewTracer(0),
		QueuePerWorker:   *queue,
		HeartbeatTimeout: *hbTimeout,
		HedgeAfter:       *hedgeAfter,
		MaxRequeues:      *maxRequeues,
		RetainFor:        *retain,
		Journal:          journal,
		ReadoptWindow:    *readoptWindow,
		Store:            cas.NewStore(*casDir),
		Metrics:          reg,
		Log:              log,
	})

	srv := cluster.NewServer(co, reg, log)
	hs := &http.Server{Addr: *addr, Handler: srv.Routes()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	log.Info("coordinating", "addr", *addr, "cas", *casDir, "journal", *journalDir,
		"queue_per_worker", *queue, "heartbeat_timeout", *hbTimeout,
		"hedge_after", *hedgeAfter, "protocol", cluster.ProtocolVersion)

	select {
	case err := <-serveErr:
		co.Close()
		log.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()

	// Graceful drain: refuse new submissions, give scheduled work a window
	// to finish (results land in the CAS, so clients polling for them still
	// succeed), then shut down.
	log.Info("signal received, draining", "timeout", *drainTimeout)
	co.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if co.Quiesce(dctx) {
		log.Info("all scheduled work finished")
	} else {
		log.Warn("drain timeout; unfinished items fail with coordinator closed")
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Error("shutdown failed", "err", err)
	}
	co.Close()
	log.Info("drained, exiting")
}
