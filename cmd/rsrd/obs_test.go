package main

import (
	"bufio"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rsr/internal/engine"
	"rsr/internal/obs"
)

// testLogger keeps request-log lines out of test output.
func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// metricsServer builds a daemon wired the way main() wires it: one registry
// shared by the engine and the /metrics endpoint.
func metricsServer(t *testing.T) (*httptest.Server, func()) {
	t.Helper()
	reg := obs.NewRegistry()
	eng := engine.New(engine.Options{Workers: 2, Metrics: reg})
	ts := httptest.NewServer(newServer(eng, reg, nil, testLogger(), 30*time.Second).routes())
	return ts, func() { ts.Close(); eng.Close() }
}

// TestMetricsEndpoint submits a job and scrapes /metrics, checking the
// content type and the metric families the CI smoke job greps for.
func TestMetricsEndpoint(t *testing.T) {
	ts, stop := metricsServer(t)
	defer stop()

	id := postJob(t, ts, `{"workload": "twolf", "method": "R$BP (100%)",
		"total": 400000, "seed": 1,
		"regimen": {"ClusterSize": 2000, "NumClusters": 10}}`)
	waitDone(t, ts, id)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`rsr_engine_jobs_total{state="done"} 1`,
		`rsr_engine_cache_total{result="miss"} 1`,
		`rsr_engine_job_seconds_count{state="done"} 1`,
		"rsr_sampling_phase_seconds_bucket",
		"rsr_sampling_clusters_total 10",
		"rsr_warmup_recon_applied_total",
		"rsr_cache_events_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
}

// waitDone polls the job status endpoint until the job finishes.
func waitDone(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		switch st.Status {
		case "done":
			return
		case "failed":
			t.Fatalf("job failed: %s", st.Error)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
}

// TestRequestIDs pins the logging satellite's visible half: every response
// carries an X-Request-ID, a client-supplied ID is echoed back, and issued
// IDs are distinct.
func TestRequestIDs(t *testing.T) {
	ts, stop := metricsServer(t)
	defer stop()

	get := func(withID string) string {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if withID != "" {
			req.Header.Set("X-Request-ID", withID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.Header.Get("X-Request-ID")
	}

	a, b := get(""), get("")
	if a == "" || b == "" {
		t.Fatal("responses missing X-Request-ID")
	}
	if a == b {
		t.Fatalf("request IDs not unique: %q", a)
	}
	if got := get("client-supplied-7"); got != "client-supplied-7" {
		t.Fatalf("client ID not echoed: got %q", got)
	}
}

// TestEventStreamStillFlushes guards the statusWriter wrapper: the ndjson
// event stream must keep streaming (Flush must reach the underlying writer)
// now that every handler runs behind the logging middleware.
func TestEventStreamStillFlushes(t *testing.T) {
	ts, stop := metricsServer(t)
	defer stop()

	// The stream sends no headers until the first event flushes, so the GET
	// must run concurrently with job submissions. Reading one line proves
	// data flows before the handler returns; an unflushed stream would
	// buffer until disconnect.
	type done struct {
		line string
		err  error
	}
	ch := make(chan done, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/events")
		if err != nil {
			ch <- done{err: err}
			return
		}
		defer resp.Body.Close()
		line, err := bufio.NewReader(resp.Body).ReadString('\n')
		ch <- done{line: line, err: err}
	}()

	// Keep submitting fresh jobs until one emits after the subscription is
	// live (events are only fanned out to subscribers present at emit time).
	deadline := time.After(15 * time.Second)
	for seed := int64(100); ; seed++ {
		postJob(t, ts, fmt.Sprintf(`{"workload": "twolf", "method": "None",
			"total": 400000, "seed": %d,
			"regimen": {"ClusterSize": 2000, "NumClusters": 10}}`, seed))
		select {
		case d := <-ch:
			if d.err != nil {
				t.Fatalf("reading event stream: %v", d.err)
			}
			if !strings.Contains(d.line, `"State"`) {
				t.Fatalf("first event = %q, want an engine event", d.line)
			}
			return
		case <-time.After(200 * time.Millisecond):
		case <-deadline:
			t.Fatal("no event arrived; stream is not flushing through the logging wrapper")
		}
	}
}
