package main

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"
)

// requestIDs issues daemon-unique request IDs: a random boot prefix plus a
// counter, so IDs stay grep-able across log shipping without coordination.
type requestIDs struct {
	boot string
	n    atomic.Uint64
}

func newRequestIDs() *requestIDs {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a fixed prefix; IDs remain unique within the process.
		return &requestIDs{boot: "rsrd0000"}
	}
	return &requestIDs{boot: hex.EncodeToString(b[:])}
}

func (r *requestIDs) next() string {
	return fmt.Sprintf("%s-%06d", r.boot, r.n.Add(1))
}

// statusWriter captures the response status for the request log. It forwards
// Flush so the ndjson event stream keeps flushing through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withRequestLog wraps next so every request gets an ID (a client-supplied
// X-Request-ID is honoured, otherwise one is issued), the ID is echoed on the
// response, and exactly one structured line is logged on completion.
func withRequestLog(log *slog.Logger, ids *requestIDs, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = ids.next()
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		begin := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		log.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"duration", time.Since(begin).Round(time.Microsecond),
			"remote", r.RemoteAddr)
	})
}
