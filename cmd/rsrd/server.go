package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rsr/internal/cluster"
	"rsr/internal/engine"
	"rsr/internal/experiments"
	"rsr/internal/obs"
	"rsr/internal/sampling"
	"rsr/internal/warmup"
)

// server maps the engine onto the /v1 HTTP API. Tickets are retained by job
// ID (the content hash) so clients can poll for results.
type server struct {
	eng *engine.Engine
	reg *obs.Registry // scraped by GET /metrics; nil disables the endpoint
	tr  *obs.Tracer   // span ring served at GET /v1/trace; nil disables it
	log *slog.Logger
	ids *cluster.RequestIDs

	// retryAfter is the drain-refusal Retry-After header value, derived
	// from the configured drain window: the drain bounds how long this
	// process may still be finishing work, so it is the honest earliest
	// time a retried submission could land on a replacement.
	retryAfter string

	// draining flips when shutdown begins: readiness goes 503, submissions
	// are refused with 503 + Retry-After, but status polls and the event
	// stream keep working so clients can collect in-flight results.
	draining atomic.Bool

	// peer, set in peer mode, folds the fabric relationship into readiness:
	// a worker whose coordinator is unreachable reports not-ready, so fleet
	// health rollups show the partition instead of a green worker doing
	// nothing.
	peer atomic.Pointer[cluster.Peer]

	mu      sync.Mutex
	tickets map[string]*engine.Ticket
}

// setPeer attaches the fabric peer whose connectivity readiness should
// reflect.
func (s *server) setPeer(p *cluster.Peer) { s.peer.Store(p) }

func newServer(eng *engine.Engine, reg *obs.Registry, tr *obs.Tracer, log *slog.Logger, drainWindow time.Duration) *server {
	if log == nil {
		log = slog.Default()
	}
	return &server{eng: eng, reg: reg, tr: tr, log: log, ids: cluster.NewRequestIDs(),
		retryAfter: retryAfterValue(drainWindow),
		tickets:    make(map[string]*engine.Ticket)}
}

// retryAfterValue renders a drain window as a Retry-After header: whole
// seconds rounded up, at least 1 (sub-second windows must not advertise an
// instant retry), and capped at five minutes so a generous drain budget
// does not park well-behaved clients indefinitely.
func retryAfterValue(drainWindow time.Duration) string {
	secs := int64((drainWindow + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 300 {
		secs = 300
	}
	return strconv.FormatInt(secs, 10)
}

// beginDrain stops accepting new jobs; already-submitted work continues.
func (s *server) beginDrain() { s.draining.Store(true) }

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/events", s.handleEvents)
	// Build info + protocol version, so operators and peers can spot
	// mixed-version fleets before they corrupt a sweep.
	mux.HandleFunc("/v1/version", s.handleVersion)
	// Liveness is unconditional while the process runs; readiness flips
	// during drain so load balancers stop routing submissions here.
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	// Prometheus text exposition of the engine's metric registry.
	mux.HandleFunc("/metrics", s.handleMetrics)
	// Fabric observability pulls: the coordinator fetches this node's span
	// ring when aggregating a sweep trace, and its registry snapshot when
	// federating worker metrics onto the coordinator's /metrics.
	mux.HandleFunc("/v1/trace", s.handleTrace)
	mux.HandleFunc("/v1/metricsnap", s.handleMetricSnap)
	// Live profiling of a running daemon (the default-mux registration in
	// net/http/pprof does not apply to a private mux, so mount explicitly).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// Every route shares the request-ID + structured-log wrapper: one line
	// per request, the ID echoed as X-Request-ID.
	return cluster.WithRequestLog(s.log, s.ids, mux)
}

// handleVersion serves build info and the cluster protocol version.
func (s *server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, cluster.Version())
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		httpError(w, http.StatusNotFound, "metrics disabled")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.log.Error("metrics write failed", "err", err)
	}
}

// handleTrace serves the node's span ring as JSON ([]obs.SpanDump), filtered
// to one sweep tag when ?sweep= is given. Timestamps are this node's own
// clock in unix nanoseconds; the coordinator-side aggregator rebases them
// using the heartbeat-estimated clock offset.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tr == nil {
		httpError(w, http.StatusNotFound, "tracing disabled")
		return
	}
	writeJSON(w, http.StatusOK, s.tr.Dump(r.URL.Query().Get("sweep")))
}

// handleMetricSnap serves the registry's snapshot as JSON
// ([]obs.MetricSnapshot) for the coordinator's metrics federation.
func (s *server) handleMetricSnap(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		httpError(w, http.StatusNotFound, "metrics disabled")
		return
	}
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}

// jobRequest is the POST /v1/jobs body. Unset fields take the reproduction
// defaults: the paper's machine, the workload's Table-1 regimen, the
// reference 20M-instruction length, and seed 2007.
type jobRequest struct {
	Kind     string            `json:"kind,omitempty"` // "sampled" (default) or "full"
	Workload string            `json:"workload"`
	Method   string            `json:"method,omitempty"` // warm-up label, e.g. "R$BP (20%)"
	Total    uint64            `json:"total,omitempty"`
	Seed     *int64            `json:"seed,omitempty"`
	Regimen  *sampling.Regimen `json:"regimen,omitempty"`
	// TimeoutMS bounds the job's execution in milliseconds (0 = engine default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Shards runs a sampled job through the parallel cluster pipeline with
	// this many shard goroutines (0 or 1 = sequential). Results are
	// byte-identical either way, so shards do not enter the job's identity.
	Shards int `json:"shards,omitempty"`
}

// toJob resolves the request against the reproduction defaults.
func (r jobRequest) toJob() (engine.Job, error) {
	def := experiments.DefaultConfig()
	j := engine.Job{
		Kind:     engine.JobSampled,
		Workload: r.Workload,
		Machine:  sampling.DefaultMachine(),
		Total:    def.Total(),
		Seed:     def.Seed,
		Timeout:  time.Duration(r.TimeoutMS) * time.Millisecond,
		Shards:   r.Shards,
	}
	if r.Kind != "" {
		j.Kind = engine.JobKind(r.Kind)
	}
	if r.Total > 0 {
		j.Total = r.Total
	}
	if r.Seed != nil {
		j.Seed = *r.Seed
	}
	if j.Kind == engine.JobSampled {
		if r.Regimen != nil {
			j.Regimen = *r.Regimen
		} else {
			// The workload name is user input: an unknown name must fail
			// here (400) rather than silently simulate under the default
			// design.
			reg, err := experiments.RegimenForStrict(r.Workload)
			if err != nil {
				return engine.Job{}, err
			}
			j.Regimen = reg
		}
		spec, err := warmup.SpecByLabel(r.Method)
		if err != nil {
			if r.Method != "" {
				return engine.Job{}, err
			}
			spec = warmup.Spec{Kind: warmup.KindReverse, Percent: 20, Cache: true, BPred: true}
		}
		j.Warmup = spec
	}
	return j, nil
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if p := s.peer.Load(); p != nil && !p.Connected() {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "coordinator unreachable"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", s.retryAfter)
		httpError(w, http.StatusServiceUnavailable, "draining: not accepting new jobs")
		return
	}
	var req jobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad job body: %v", err)
		return
	}
	job, err := req.toJob()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The daemon owns the run lifetime, not the request: jobs keep running
	// after the submitting connection goes away. The request's correlation
	// ID rides along so the job's engine events carry the same X-Request-ID
	// the client saw.
	ctx := engine.WithRequestID(context.Background(), cluster.RequestIDFrom(r.Context()))
	ctx = engine.WithSweep(ctx, cluster.SweepIDFrom(r.Context()))
	tk, err := s.eng.Submit(ctx, job)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	s.tickets[tk.Hash()] = tk
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":    tk.Hash(),
		"label": job.Label(),
	})
}

// jobStatus is the GET /v1/jobs/{id} response.
type jobStatus struct {
	ID     string         `json:"id"`
	Status string         `json:"status"` // pending, done, or failed
	Error  string         `json:"error,omitempty"`
	Result *engine.Result `json:"result,omitempty"`
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	s.mu.Lock()
	tk, ok := s.tickets[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	st := jobStatus{ID: id, Status: "pending"}
	if res, err, done := tk.Result(); done {
		if err != nil {
			st.Status, st.Error = "failed", err.Error()
		} else {
			st.Status, st.Result = "done", res
		}
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.Stats())
}

// handleEvents streams engine progress events as newline-delimited JSON
// until the client disconnects.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, _ := w.(http.Flusher)
	events, cancel := s.eng.Subscribe(256)
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
