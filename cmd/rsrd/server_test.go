package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rsr/internal/cluster"
	"rsr/internal/engine"
)

func postJob(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.ID == "" {
		t.Fatal("no job id")
	}
	return out.ID
}

func getStatus(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestDaemonJobLifecycle(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2})
	defer eng.Close()
	ts := httptest.NewServer(newServer(eng, nil, nil, testLogger(), 30*time.Second).routes())
	defer ts.Close()

	id := postJob(t, ts, `{"workload": "twolf", "method": "None",
		"total": 400000, "seed": 1,
		"regimen": {"ClusterSize": 2000, "NumClusters": 10}}`)

	deadline := time.Now().Add(2 * time.Minute)
	var st jobStatus
	for {
		st = getStatus(t, ts, id)
		if st.Status != "pending" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.Status != "done" {
		t.Fatalf("status = %s (error %q)", st.Status, st.Error)
	}
	if st.Result == nil || st.Result.Sampled == nil || st.Result.Sampled.IPCEstimate() <= 0 {
		t.Fatalf("bad result: %+v", st.Result)
	}

	// Resubmitting the identical job reuses the cached result immediately.
	id2 := postJob(t, ts, `{"workload": "twolf", "method": "None",
		"total": 400000, "seed": 1,
		"regimen": {"ClusterSize": 2000, "NumClusters": 10}}`)
	if id2 != id {
		t.Fatalf("content address changed: %s vs %s", id2, id)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats engine.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Done != 1 {
		t.Fatalf("stats.Done = %d, want 1", stats.Done)
	}
}

// TestDaemonDrainGraceful is the drain acceptance test: once drain begins,
// readiness flips and submissions are refused with 503 + Retry-After, but
// the in-flight job completes within the drain budget and its result stays
// pollable.
func TestDaemonDrainGraceful(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 1})
	defer eng.Close()
	s := newServer(eng, nil, nil, testLogger(), 42*time.Second)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	statusOf := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if c := statusOf("/healthz"); c != http.StatusOK {
		t.Fatalf("healthz before drain = %d", c)
	}
	if c := statusOf("/readyz"); c != http.StatusOK {
		t.Fatalf("readyz before drain = %d", c)
	}

	// A real job is in flight when the drain begins.
	id := postJob(t, ts, `{"workload": "gcc", "method": "None",
		"total": 2000000, "seed": 1,
		"regimen": {"ClusterSize": 2000, "NumClusters": 20}}`)
	s.beginDrain()

	if c := statusOf("/healthz"); c != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200 (liveness is unconditional)", c)
	}
	if c := statusOf("/readyz"); c != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", c)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workload": "twolf", "method": "None", "total": 400000,
			"regimen": {"ClusterSize": 2000, "NumClusters": 10}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submission during drain = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "42" {
		t.Errorf("503 during drain: Retry-After = %q, want %q (the configured -drain-timeout)", ra, "42")
	}

	// The in-flight job finishes inside the drain budget...
	dctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if !eng.Quiesce(dctx) {
		t.Fatal("engine did not quiesce within the drain budget")
	}
	// ...and its result is still retrievable after the drain.
	st := getStatus(t, ts, id)
	if st.Status != "done" || st.Result == nil {
		t.Fatalf("in-flight job after drain: status=%s err=%q", st.Status, st.Error)
	}
}

// TestDaemonReadyzReflectsPeerConnectivity pins peer-mode readiness: a
// worker whose coordinator relationship is healthy reports ready, and one
// whose coordinator became unreachable reports 503 — so fleet health rollups
// show the partition instead of a green worker pulling nothing.
func TestDaemonReadyzReflectsPeerConnectivity(t *testing.T) {
	co := cluster.NewCoordinator(cluster.CoordinatorOptions{
		HeartbeatTimeout: time.Hour, Log: testLogger(),
	})
	defer co.Close()
	cts := httptest.NewServer(cluster.NewServer(co, nil, testLogger()).Routes())

	eng := engine.New(engine.Options{Workers: 1})
	defer eng.Close()
	p, err := cluster.NewPeer(cluster.PeerOptions{
		Node: "w1", Coordinator: cts.URL, Engine: eng,
		HeartbeatEvery: 20 * time.Millisecond, PollEvery: 10 * time.Millisecond,
		Log: testLogger(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	s := newServer(eng, nil, nil, testLogger(), 30*time.Second)
	s.setPeer(p)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	statusOf := func() int {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if c := statusOf(); c != http.StatusOK {
		t.Fatalf("readyz with healthy coordinator = %d, want 200", c)
	}

	// The coordinator vanishes; after enough failed heartbeats the peer flips
	// to its reconnect machine and readiness follows.
	cts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for statusOf() != http.StatusServiceUnavailable {
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped to 503 while the coordinator was unreachable")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if p.Connected() {
		t.Error("peer still reports connected to a dead coordinator")
	}
}

func TestDaemonRejectsBadJobs(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 1})
	defer eng.Close()
	ts := httptest.NewServer(newServer(eng, nil, nil, testLogger(), 30*time.Second).routes())
	defer ts.Close()

	for _, body := range []string{
		`{"workload": "nope"}`,
		`{"workload": "twolf", "method": "bogus label"}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
}
