package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rsr/internal/cluster"
	"rsr/internal/engine"
)

// TestVersionEndpoint pins the mixed-version guard: /v1/version reports the
// cluster protocol version so peers and operators can spot skew before it
// corrupts a sweep.
func TestVersionEndpoint(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 1})
	defer eng.Close()
	ts := httptest.NewServer(newServer(eng, nil, nil, testLogger(), time.Second).routes())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var v cluster.VersionInfo
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Protocol != cluster.ProtocolVersion {
		t.Fatalf("protocol = %d, want %d", v.Protocol, cluster.ProtocolVersion)
	}
	if v.GoVersion == "" || v.Module == "" {
		t.Fatalf("missing build info: %+v", v)
	}
}

// TestRequestIDReachesJobEvents pins correlation through the daemon: the
// X-Request-ID a client supplies with a submission is echoed back and
// stamped on the job's engine events.
func TestRequestIDReachesJobEvents(t *testing.T) {
	eng := engine.New(engine.Options{Workers: 2})
	defer eng.Close()
	ts := httptest.NewServer(newServer(eng, nil, nil, testLogger(), time.Second).routes())
	defer ts.Close()

	events, cancel := eng.Subscribe(256)
	defer cancel()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(
		`{"workload": "twolf", "method": "None", "total": 400000, "seed": 1,
		  "regimen": {"ClusterSize": 2000, "NumClusters": 10}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "corr-rsrd-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "corr-rsrd-7" {
		t.Fatalf("echoed request ID = %q", got)
	}
	deadline := time.After(time.Minute)
	for {
		select {
		case ev := <-events:
			if ev.RequestID == "corr-rsrd-7" {
				return
			}
		case <-deadline:
			t.Fatal("no engine event carried the request ID")
		}
	}
}
