// Command rsrd is a minimal HTTP daemon serving simulation jobs over the
// concurrent engine: the seed of running the reproduction as a service.
//
// Usage:
//
//	rsrd [-addr :8745] [-parallel N] [-cachedir DIR] [-job-timeout D]
//	     [-retries N] [-drain-timeout D]
//	     [-peer -coordinator URL [-node NAME] [-pulls N]]
//
// API:
//
//	POST /v1/jobs      submit a job; returns {"id": <job hash>, ...}
//	GET  /v1/jobs/{id} job status, and the result once finished
//	GET  /v1/stats     engine scheduler/cache counters
//	GET  /v1/events    progress event stream (ndjson, until disconnect)
//	GET  /v1/version   build info + cluster protocol version
//	GET  /metrics      Prometheus text exposition of the metric registry
//	GET  /healthz      liveness (200 while the process runs)
//	GET  /readyz       readiness (503 once draining)
//
// With -peer, the daemon additionally joins the sweep fabric of the rsrc
// coordinator at -coordinator: it heartbeats, pulls work, runs it on the
// local engine, uploads results to the coordinator's content-addressed
// store, and shares pre-pass checkpoint chains through the same store so
// sibling nodes skip redundant functional warm-up. The local HTTP API stays
// fully usable in peer mode.
//
// Every request is logged as one structured log/slog line (method, path,
// status, duration, request ID); the ID is echoed as X-Request-ID, and a
// client-supplied X-Request-ID is honoured for cross-service correlation.
//
// A submission names a workload and either a warm-up method label from the
// paper's matrix or kind "full" for a true-IPC baseline:
//
//	{"workload": "twolf", "method": "R$BP (20%)", "total": 2000000, "seed": 1}
//	{"workload": "gcc", "kind": "full", "total": 2000000}
//
// Machine and regimen default to the paper's machine and the workload's
// Table-1 regimen; total defaults to the reference 20M instructions.
//
// On SIGTERM/SIGINT the daemon drains gracefully: readiness flips, new
// submissions get 503 + Retry-After, in-flight jobs run to completion
// (their results checkpointed in the disk cache) up to -drain-timeout, and
// only then does the process exit. A second signal kills immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rsr/internal/cluster"
	"rsr/internal/engine"
	"rsr/internal/obs"
)

// advertiseURL resolves the base URL this worker advertises to the
// coordinator for trace/metrics pulls: the -advertise flag verbatim when
// set, otherwise derived from -addr (a bare ":port" becomes loopback, which
// is right for the single-host topologies of tests and smoke scripts;
// multi-host fleets should set -advertise explicitly).
func advertiseURL(advertise, addr string) string {
	if advertise != "" {
		return advertise
	}
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + addr
}

func main() {
	addr := flag.String("addr", ":8745", "listen address")
	parallel := flag.Int("parallel", 0, "engine worker-pool size (0 = GOMAXPROCS)")
	cacheDir := flag.String("cachedir", "", "content-addressed result cache directory (empty = memory-only)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job execution deadline (0 = none); expiry fails the job with ErrDeadline")
	timeoutAlias := flag.Duration("timeout", 0, "deprecated alias for -job-timeout")
	retries := flag.Int("retries", 2, "extra execution attempts for transiently failed jobs (worker panics, injected faults)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on finishing in-flight jobs after SIGTERM/SIGINT")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	peerMode := flag.Bool("peer", false, "join a sweep-fabric coordinator as a worker (requires -coordinator)")
	coordinator := flag.String("coordinator", "", "coordinator base URL for -peer, e.g. http://host:9900")
	nodeName := flag.String("node", "", "cluster-unique worker name for -peer (default hostname-pid)")
	pulls := flag.Int("pulls", 0, "concurrent work-pull loops in -peer mode (0 = 2)")
	advertise := flag.String("advertise", "", "externally reachable base URL advertised to the coordinator for trace/metrics aggregation (default derived from -addr)")
	traceCap := flag.Int("trace-spans", 0, "span ring capacity for /v1/trace (0 = default)")
	flag.Parse()
	if *jobTimeout == 0 {
		*jobTimeout = *timeoutAlias
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		slog.Error("bad -log-level", "value", *logLevel, "err", err)
		os.Exit(2)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(log)

	if *peerMode && *coordinator == "" {
		slog.Error("-peer requires -coordinator")
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	// The span ring is always on: it is a fixed-size in-memory buffer whose
	// recording cost is only paid per span, and serving it at /v1/trace is
	// what lets a coordinator assemble fabric-wide sweep traces on demand.
	tracer := obs.NewTracer(*traceCap)
	engOpts := engine.Options{
		Workers:        *parallel,
		CacheDir:       *cacheDir,
		DefaultTimeout: *jobTimeout,
		MaxAttempts:    *retries + 1,
		Metrics:        reg,
		Tracer:         tracer,
	}
	if *peerMode {
		// Share pre-pass checkpoint chains through the coordinator's CAS:
		// the first node to shard a pre-pass publishes the chain, siblings
		// skip straight to detailed simulation. Execution policy only —
		// results stay byte-identical.
		engOpts.Checkpoints = cluster.NewCASCheckpoints(*coordinator, nil, log)
	}
	eng := engine.New(engOpts)

	srv := newServer(eng, reg, tracer, log, *drainTimeout)
	hs := &http.Server{Addr: *addr, Handler: srv.routes()}

	// First signal begins the drain; stop() below restores default handling
	// so a second signal kills the process immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	log.Info("listening", "addr", *addr, "workers", eng.Workers(),
		"cache", *cacheDir, "retries", *retries, "drain", *drainTimeout)

	var peer *cluster.Peer
	if *peerMode {
		p, err := cluster.NewPeer(cluster.PeerOptions{
			Node:        *nodeName,
			Coordinator: *coordinator,
			Advertise:   advertiseURL(*advertise, *addr),
			Engine:      eng,
			Pulls:       *pulls,
			Metrics:     reg,
			Log:         log,
		})
		if err == nil {
			err = p.Start()
		}
		if err != nil {
			eng.Close()
			log.Error("peer mode failed", "err", err)
			os.Exit(1)
		}
		peer = p
		srv.setPeer(p)
	}

	select {
	case err := <-serveErr:
		if peer != nil {
			peer.Close()
		}
		eng.Close()
		log.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()

	// Graceful drain: refuse new work, let in-flight jobs finish (their
	// results land in the disk cache, so a restart resumes from checkpoints
	// instead of recomputing), then stop the listener and the workers.
	log.Info("signal received, draining", "timeout", *drainTimeout)
	srv.beginDrain()
	if peer != nil {
		// Leave the fabric first: heartbeats stop, so the coordinator
		// requeues anything this node had leased but not finished.
		peer.Close()
	}
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if eng.Quiesce(dctx) {
		log.Info("all in-flight jobs finished")
	} else {
		s := eng.Stats()
		log.Warn("drain timeout; completed work is checkpointed",
			"queued", s.Queued, "running", s.Running)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Error("shutdown failed", "err", err)
	}
	eng.Close()
	log.Info("drained, exiting")
}
