// Command rsrd is a minimal HTTP daemon serving simulation jobs over the
// concurrent engine: the seed of running the reproduction as a service.
//
// Usage:
//
//	rsrd [-addr :8745] [-parallel N] [-cachedir DIR] [-job-timeout D]
//	     [-retries N] [-drain-timeout D]
//
// API:
//
//	POST /v1/jobs      submit a job; returns {"id": <job hash>, ...}
//	GET  /v1/jobs/{id} job status, and the result once finished
//	GET  /v1/stats     engine scheduler/cache counters
//	GET  /v1/events    progress event stream (ndjson, until disconnect)
//	GET  /metrics      Prometheus text exposition of the metric registry
//	GET  /healthz      liveness (200 while the process runs)
//	GET  /readyz       readiness (503 once draining)
//
// Every request is logged as one structured log/slog line (method, path,
// status, duration, request ID); the ID is echoed as X-Request-ID, and a
// client-supplied X-Request-ID is honoured for cross-service correlation.
//
// A submission names a workload and either a warm-up method label from the
// paper's matrix or kind "full" for a true-IPC baseline:
//
//	{"workload": "twolf", "method": "R$BP (20%)", "total": 2000000, "seed": 1}
//	{"workload": "gcc", "kind": "full", "total": 2000000}
//
// Machine and regimen default to the paper's machine and the workload's
// Table-1 regimen; total defaults to the reference 20M instructions.
//
// On SIGTERM/SIGINT the daemon drains gracefully: readiness flips, new
// submissions get 503 + Retry-After, in-flight jobs run to completion
// (their results checkpointed in the disk cache) up to -drain-timeout, and
// only then does the process exit. A second signal kills immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rsr/internal/engine"
	"rsr/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8745", "listen address")
	parallel := flag.Int("parallel", 0, "engine worker-pool size (0 = GOMAXPROCS)")
	cacheDir := flag.String("cachedir", "", "content-addressed result cache directory (empty = memory-only)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job execution deadline (0 = none); expiry fails the job with ErrDeadline")
	timeoutAlias := flag.Duration("timeout", 0, "deprecated alias for -job-timeout")
	retries := flag.Int("retries", 2, "extra execution attempts for transiently failed jobs (worker panics, injected faults)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on finishing in-flight jobs after SIGTERM/SIGINT")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	flag.Parse()
	if *jobTimeout == 0 {
		*jobTimeout = *timeoutAlias
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		slog.Error("bad -log-level", "value", *logLevel, "err", err)
		os.Exit(2)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(log)

	reg := obs.NewRegistry()
	eng := engine.New(engine.Options{
		Workers:        *parallel,
		CacheDir:       *cacheDir,
		DefaultTimeout: *jobTimeout,
		MaxAttempts:    *retries + 1,
		Metrics:        reg,
	})

	srv := newServer(eng, reg, log, *drainTimeout)
	hs := &http.Server{Addr: *addr, Handler: srv.routes()}

	// First signal begins the drain; stop() below restores default handling
	// so a second signal kills the process immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	log.Info("listening", "addr", *addr, "workers", eng.Workers(),
		"cache", *cacheDir, "retries", *retries, "drain", *drainTimeout)

	select {
	case err := <-serveErr:
		eng.Close()
		log.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()

	// Graceful drain: refuse new work, let in-flight jobs finish (their
	// results land in the disk cache, so a restart resumes from checkpoints
	// instead of recomputing), then stop the listener and the workers.
	log.Info("signal received, draining", "timeout", *drainTimeout)
	srv.beginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if eng.Quiesce(dctx) {
		log.Info("all in-flight jobs finished")
	} else {
		s := eng.Stats()
		log.Warn("drain timeout; completed work is checkpointed",
			"queued", s.Queued, "running", s.Running)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Error("shutdown failed", "err", err)
	}
	eng.Close()
	log.Info("drained, exiting")
}
