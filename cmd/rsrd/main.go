// Command rsrd is a minimal HTTP daemon serving simulation jobs over the
// concurrent engine: the seed of running the reproduction as a service.
//
// Usage:
//
//	rsrd [-addr :8745] [-parallel N] [-cachedir DIR] [-timeout D]
//
// API:
//
//	POST /v1/jobs      submit a job; returns {"id": <job hash>, ...}
//	GET  /v1/jobs/{id} job status, and the result once finished
//	GET  /v1/stats     engine scheduler/cache counters
//	GET  /v1/events    progress event stream (ndjson, until disconnect)
//
// A submission names a workload and either a warm-up method label from the
// paper's matrix or kind "full" for a true-IPC baseline:
//
//	{"workload": "twolf", "method": "R$BP (20%)", "total": 2000000, "seed": 1}
//	{"workload": "gcc", "kind": "full", "total": 2000000}
//
// Machine and regimen default to the paper's machine and the workload's
// Table-1 regimen; total defaults to the reference 20M instructions.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"rsr/internal/engine"
)

func main() {
	addr := flag.String("addr", ":8745", "listen address")
	parallel := flag.Int("parallel", 0, "engine worker-pool size (0 = GOMAXPROCS)")
	cacheDir := flag.String("cachedir", "", "content-addressed result cache directory (empty = memory-only)")
	timeout := flag.Duration("timeout", 0, "default per-job execution timeout (0 = none)")
	flag.Parse()

	eng := engine.New(engine.Options{
		Workers:        *parallel,
		CacheDir:       *cacheDir,
		DefaultTimeout: *timeout,
	})
	defer eng.Close()

	srv := newServer(eng)
	fmt.Printf("rsrd: listening on %s (workers=%d, cache=%q)\n", *addr, eng.Workers(), *cacheDir)
	if err := http.ListenAndServe(*addr, srv.routes()); err != nil {
		fmt.Fprintln(os.Stderr, "rsrd:", err)
		os.Exit(1)
	}
}
