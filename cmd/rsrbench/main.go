// Command rsrbench is the machine-readable benchmark harness: it runs the
// performance-critical substrates through testing.Benchmark and writes a
// BENCH_<label>.json snapshot, so before/after comparisons across commits are
// a file diff rather than a scrollback archaeology exercise.
//
// Usage:
//
//	rsrbench [-label dev] [-out FILE] [-compare BASELINE.json]
//
// The metrics:
//
//	functional_sim     architectural interpreter throughput (instr/s)
//	detailed_sim       cycle-level timing model throughput (instr/s)
//	reverse_recon_20   reverse cache reconstruction, newest 20% (records/s)
//	reverse_recon_100  reverse cache reconstruction, full log (records/s)
//	warmup_<arm>       end-to-end sampled run per warm-up method (runs/s)
//	shard_sweep_<n>    parallel cluster pipeline at n shards (runs/s);
//	                   the <n>/1 ratio is the intra-run speedup
//	shard_sweep_funcwarm_<n>  the same sweep for functional warming (S$BP),
//	                   which shards through speculative region captures
//	recon_shardside_<on|off>  reverse reconstruction planned on the shard
//	                   producers (on, the default) vs scanned on the
//	                   consumer (off): the serial-fraction ablation
//	figure7            one end-to-end figure regeneration (runs/s)
//
// With -compare, the deltas against a previous snapshot are printed and the
// exit status is still zero: regression gating policy belongs to CI, not to
// the measuring tool. Arms without a counterpart on the other side are
// printed with a note and skipped — a new arm never breaks comparison
// against an older snapshot.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"rsr/internal/core"
	"rsr/internal/experiments"
	"rsr/internal/funcsim"
	"rsr/internal/mem"
	"rsr/internal/regimen"
	"rsr/internal/sampling"
	"rsr/internal/trace"
	"rsr/internal/warmup"
	"rsr/internal/workload"
)

// Metric is one measured quantity.
type Metric struct {
	Name string `json:"name"`
	// Value is the headline number in Unit (higher is better for all
	// rsrbench metrics: they are throughputs).
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	// NsPerOp and Iterations carry the raw testing.Benchmark result.
	NsPerOp    float64 `json:"ns_per_op"`
	Iterations int     `json:"iterations"`
}

// Snapshot is the BENCH_<label>.json document.
type Snapshot struct {
	Label      string   `json:"label"`
	Timestamp  string   `json:"timestamp"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Metrics    []Metric `json:"metrics"`
}

func main() {
	label := flag.String("label", "dev", "snapshot label (names the output file)")
	out := flag.String("out", "", "output path (default BENCH_<label>.json)")
	compare := flag.String("compare", "", "previous snapshot to diff against")
	flag.Parse()
	if *out == "" {
		*out = fmt.Sprintf("BENCH_%s.json", *label)
	}

	snap := &Snapshot{
		Label:      *label,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, m := range measure() {
		snap.Metrics = append(snap.Metrics, m)
		fmt.Printf("%-26s %14.0f %-10s (%d iter, %.2f ms/op)\n",
			m.Name, m.Value, m.Unit, m.Iterations, m.NsPerOp/1e6)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsrbench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "rsrbench:", err)
		os.Exit(1)
	}
	f.Close()
	fmt.Printf("wrote %s\n", *out)

	if *compare != "" {
		if err := printComparison(os.Stdout, *compare, snap); err != nil {
			fmt.Fprintln(os.Stderr, "rsrbench: -compare:", err)
			os.Exit(1)
		}
	}
}

// throughput converts a benchmark of `per` units of work per iteration into
// a units-per-second Metric.
func throughput(name, unit string, per float64, r testing.BenchmarkResult) Metric {
	return Metric{
		Name:       name,
		Value:      per * float64(r.N) / r.T.Seconds(),
		Unit:       unit,
		NsPerOp:    float64(r.NsPerOp()),
		Iterations: r.N,
	}
}

func measure() []Metric {
	var out []Metric
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "rsrbench:", err)
		os.Exit(1)
	}

	tw, _ := workload.ByName("twolf")
	twolf := tw.Build()
	gc, _ := workload.ByName("gcc")
	gcc := gc.Build()

	// Architectural interpreter: the batched hot loop.
	const funcInstr = 1_000_000
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fs := funcsim.New(twolf)
			if _, err := fs.Skip(funcInstr); err != nil {
				fail(err)
			}
		}
	})
	out = append(out, throughput("functional_sim", "instr/s", funcInstr, r))

	// Cycle-level timing model.
	const detInstr = 500_000
	r = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sampling.RunFull(twolf, sampling.DefaultMachine(), detInstr); err != nil {
				fail(err)
			}
		}
	})
	out = append(out, throughput("detailed_sim", "instr/s", detInstr, r))

	// Reverse cache reconstruction over a synthetic log (same generator as
	// BenchmarkReverseCacheReconstruction).
	log := make([]trace.MemRecord, 200_000)
	lcg := uint64(12345)
	for i := range log {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		log[i] = trace.MemRecord{Addr: (lcg >> 20) % (8 << 20), IsStore: i%3 == 0}
	}
	for _, pct := range []int{20, 100} {
		pct := pct
		h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = core.ReconstructCaches(h, log, pct)
			}
		})
		out = append(out, throughput(fmt.Sprintf("reverse_recon_%d", pct), "records/s",
			float64(len(log))*float64(pct)/100, r))
	}

	// End-to-end sampled runs per warm-up arm: the wall-clock form of the
	// paper's speedup claim, and the number the batched streaming work moves.
	reg := sampling.Regimen{ClusterSize: 2000, NumClusters: 20}
	for _, spec := range []warmup.Spec{
		{Kind: warmup.KindNone},
		{Kind: warmup.KindSMARTS, Cache: true, BPred: true},
		{Kind: warmup.KindReverse, Percent: 20, Cache: true, BPred: true},
		{Kind: warmup.KindReverse, Percent: 100, Cache: true, BPred: true},
	} {
		spec := spec
		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sampling.RunSampled(gcc, sampling.DefaultMachine(), reg, 2_000_000, 1, spec); err != nil {
					fail(err)
				}
			}
		})
		out = append(out, throughput("warmup_"+spec.Label(), "runs/s", 1, r))
	}

	// Shard sweep: the same Figure-7 warm-up configuration driven through
	// the parallel cluster pipeline at increasing shard counts. Results are
	// byte-identical across the sweep (the parallel path's contract), so the
	// only thing that moves is wall clock; shard_sweep_N / shard_sweep_1 is
	// the intra-run speedup quoted in EXPERIMENTS.md.
	sweepSpec := warmup.Spec{Kind: warmup.KindReverse, Percent: 20, Cache: true, BPred: true}
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		opts := sampling.Options{Shards: shards}
		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sampling.RunSampledOpts(gcc, sampling.DefaultMachine(), reg, 2_000_000, 1, sweepSpec, opts); err != nil {
					fail(err)
				}
			}
		})
		out = append(out, throughput(fmt.Sprintf("shard_sweep_%d", shards), "runs/s", 1, r))
	}

	// The same sweep for the functional-warming family: producers capture
	// the would-be warming applications into private region logs and the
	// consumer replays them in cluster order. On one core the sweep measures
	// the capture/replay overhead (the honest number); the speedup story is
	// the multicore model in EXPERIMENTS.md.
	fwSpec := warmup.Spec{Kind: warmup.KindSMARTS, Cache: true, BPred: true}
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		opts := sampling.Options{Shards: shards}
		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sampling.RunSampledOpts(gcc, sampling.DefaultMachine(), reg, 2_000_000, 1, fwSpec, opts); err != nil {
					fail(err)
				}
			}
		})
		out = append(out, throughput(fmt.Sprintf("shard_sweep_funcwarm_%d", shards), "runs/s", 1, r))
	}

	// Reconstruction placement ablation: identical sharded runs with the
	// reverse scans planned on the producers (on — the default) vs executed
	// on the consumer at EndSkip (off — the pre-shard-side placement).
	// Results are byte-identical; on/off is the serial fraction the tentpole
	// moved off the critical path.
	abSpec := warmup.Spec{Kind: warmup.KindReverse, Percent: 100, Cache: true, BPred: true}
	for _, arm := range []struct {
		name     string
		consumer bool
	}{{"on", false}, {"off", true}} {
		arm := arm
		opts := sampling.Options{Shards: 2, ConsumerRecon: arm.consumer}
		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sampling.RunSampledOpts(gcc, sampling.DefaultMachine(), reg, 2_000_000, 1, abSpec, opts); err != nil {
					fail(err)
				}
			}
		})
		out = append(out, throughput("recon_shardside_"+arm.name, "runs/s", 1, r))
	}

	// Sampling-strategy arms: one end-to-end run per registered regimen on
	// the same workload, budget, and warm-up. The stratified-uniform arm is
	// the pre-refactor warmup_R$BP (20%) path through the strategy seam
	// (byte-identical results); the others price their selection passes
	// (sketch-cache scoring, BBV profiling) against the fixed design.
	stratSpec := warmup.Spec{Kind: warmup.KindReverse, Percent: 20, Cache: true, BPred: true}
	for _, strat := range regimen.All() {
		strat := strat
		p := regimen.Params{
			Program: gcc,
			Machine: sampling.DefaultMachine(),
			Regimen: reg,
			Total:   2_000_000,
			Seed:    1,
			Warmup:  stratSpec,
		}
		r = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := strat.Run(p); err != nil {
					fail(err)
				}
			}
		})
		out = append(out, throughput("regimen_"+strat.Name(), "runs/s", 1, r))
	}

	// One end-to-end figure at reduced scale: exercises the engine, the
	// sampled paths, and the reconstruction together.
	r = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := experiments.DefaultConfig()
			cfg.Scale = 0.1
			cfg.Workloads = []string{"twolf"}
			lab := experiments.NewLab(cfg)
			_, err := lab.Figure7()
			lab.Close()
			if err != nil {
				fail(err)
			}
		}
	})
	out = append(out, throughput("figure7", "runs/s", 1, r))

	return out
}

// loadSnapshot reads and validates a baseline snapshot. A truncated,
// corrupt, or empty file is an explicit error — never a silent zero-value
// baseline that would render every comparison as "(no baseline)" or a
// bogus delta.
func loadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base Snapshot
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&base); err != nil {
		return nil, fmt.Errorf("snapshot %s is corrupt or truncated: %w", path, err)
	}
	// json.Decode accepts `null` and `{}` without error; both decode to a
	// zero snapshot that must be rejected, as must trailing garbage after
	// a valid document.
	if dec.More() {
		return nil, fmt.Errorf("snapshot %s has trailing data after the JSON document", path)
	}
	if base.Label == "" || len(base.Metrics) == 0 {
		return nil, fmt.Errorf("snapshot %s is truncated or invalid: no label/metrics (re-run `make bench` to regenerate)", path)
	}
	for i, m := range base.Metrics {
		if m.Name == "" {
			return nil, fmt.Errorf("snapshot %s is invalid: metric %d has no name", path, i)
		}
	}
	return &base, nil
}

// printComparison diffs cur against the snapshot at path. Arms only one
// side knows — new arms this run, retired arms in the baseline — are noted
// and skipped rather than erroring, so a snapshot taken after new arms land
// still compares cleanly against an older baseline.
func printComparison(w io.Writer, path string, cur *Snapshot) error {
	base, err := loadSnapshot(path)
	if err != nil {
		return err
	}
	prev := make(map[string]Metric, len(base.Metrics))
	for _, m := range base.Metrics {
		prev[m.Name] = m
	}
	fmt.Fprintf(w, "\nvs %s (%s):\n", base.Label, base.Timestamp)
	seen := make(map[string]bool, len(cur.Metrics))
	for _, m := range cur.Metrics {
		seen[m.Name] = true
		p, ok := prev[m.Name]
		switch {
		case !ok:
			fmt.Fprintf(w, "%-26s %14.0f %-10s (new arm, not in baseline — skipped)\n", m.Name, m.Value, m.Unit)
		case p.Value == 0:
			fmt.Fprintf(w, "%-26s %14.0f %-10s (baseline value is zero — skipped)\n", m.Name, m.Value, m.Unit)
		default:
			fmt.Fprintf(w, "%-26s %14.0f %-10s %+7.1f%% (%.2fx)\n",
				m.Name, m.Value, m.Unit, 100*(m.Value/p.Value-1), m.Value/p.Value)
		}
	}
	for _, m := range base.Metrics {
		if !seen[m.Name] {
			fmt.Fprintf(w, "%-26s %14s %-10s (baseline-only arm, absent from this run — skipped)\n", m.Name, "-", m.Unit)
		}
	}
	return nil
}
