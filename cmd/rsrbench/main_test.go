package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadSnapshotRejectsCorrupt pins that -compare refuses truncated or
// corrupt baselines with a clear error instead of diffing against a
// zero-value snapshot.
func TestLoadSnapshotRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	valid := `{"label":"baseline","timestamp":"2026-01-01T00:00:00Z",
		"metrics":[{"name":"functional_sim","value":1,"unit":"instr/s"}]}`

	for _, tc := range []struct {
		name, content, wantErr string
	}{
		{"garbage", "!!not json!!", "corrupt or truncated"},
		{"truncatedPrefix", valid[:len(valid)/2], "corrupt or truncated"},
		{"jsonNull", "null", "truncated or invalid"},
		{"emptyObject", "{}", "truncated or invalid"},
		{"noMetrics", `{"label":"x","metrics":[]}`, "truncated or invalid"},
		{"unnamedMetric", `{"label":"x","metrics":[{"value":1}]}`, "has no name"},
		{"trailingGarbage", valid + `{"label":"y"}`, "trailing data"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := loadSnapshot(write(tc.name+".json", tc.content))
			if err == nil {
				t.Fatal("corrupt snapshot accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %v, want mention of %q", err, tc.wantErr)
			}
		})
	}

	snap, err := loadSnapshot(write("valid.json", valid))
	if err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
	if snap.Label != "baseline" || len(snap.Metrics) != 1 || snap.Metrics[0].Name != "functional_sim" {
		t.Errorf("valid snapshot misread: %+v", snap)
	}
}

// TestCompareSkipsDisjointArms pins the -compare contract for arms only one
// side knows: new arms in the current run and retired arms in the baseline
// are noted and skipped, never an error, and shared arms still diff.
func TestCompareSkipsDisjointArms(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	base := `{"label":"old","timestamp":"2026-01-01T00:00:00Z","metrics":[
		{"name":"shared","value":100,"unit":"runs/s"},
		{"name":"retired_arm","value":5,"unit":"runs/s"}]}`
	if err := os.WriteFile(path, []byte(base), 0o644); err != nil {
		t.Fatal(err)
	}
	cur := &Snapshot{Label: "new", Metrics: []Metric{
		{Name: "shared", Value: 150, Unit: "runs/s"},
		{Name: "shard_sweep_funcwarm_4", Value: 7, Unit: "runs/s"},
	}}
	var buf strings.Builder
	if err := printComparison(&buf, path, cur); err != nil {
		t.Fatalf("comparison with disjoint arms errored: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"shared", "+50.0%",
		"shard_sweep_funcwarm_4", "new arm, not in baseline",
		"retired_arm", "baseline-only arm",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison output missing %q:\n%s", want, out)
		}
	}
}

// TestLoadSnapshotAcceptsCommittedBaseline guards the repo's own pinned
// baseline: it must always parse.
func TestLoadSnapshotAcceptsCommittedBaseline(t *testing.T) {
	snap, err := loadSnapshot(filepath.Join("..", "..", "BENCH_baseline.json"))
	if err != nil {
		t.Fatalf("committed baseline rejected: %v", err)
	}
	if len(snap.Metrics) == 0 {
		t.Error("committed baseline has no metrics")
	}
}
