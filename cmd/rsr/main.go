// Command rsr regenerates the paper's tables and figures and runs ad-hoc
// simulations.
//
// Usage:
//
//	rsr [flags] <command>
//
// Commands:
//
//	list       list workloads and warm-up methods
//	table1     true IPC and sampling regimen per workload
//	table2     the warm-up method matrix
//	fig5       cache-only warm-up comparison
//	fig6       branch-predictor-only warm-up comparison
//	fig7       combined warm-up comparison
//	fig8       per-benchmark Reverse vs SMARTS
//	fig9       SimPoint comparison
//	appendix   confidence tests, relative error, and time for all methods
//	ablate     extensions: MRRL/BLRL, inference on/off, detailed warming,
//	           bus contention, prefetcher
//	sweep      warm-up percentage sweep on one workload (use -workload)
//	report     self-contained HTML report with charts (use -out)
//	all        every table and figure, in order
//	run        one sampled run (use -workload, -method, and optionally
//	           -regimen to pick the sampling strategy)
//	regimens   list the pluggable sampling strategies
//	strategies sampling-strategy head-to-head: every registered strategy on
//	           the lab's workloads, scored against the true IPC
//	top        live cluster status view (requires -cluster): queue depths,
//	           in-flight leases, shard utilization, stragglers, journal
//	           fsync latency, refreshed every second until interrupted
//
// Flags:
//
//	-cluster url   run jobs on a sweep-fabric coordinator (cmd/rsrc) instead
//	               of a local engine, e.g. -cluster http://host:9900
//	-scale f       scale workload length (1.0 = 20M instructions)
//	-seed n        cluster placement seed
//	-workloads s   comma-separated workload subset
//	-parallel n    engine worker-pool size (0 = GOMAXPROCS; 1 for clean per-run wall times)
//	-shards n      cluster-pipeline shards inside each sampled run
//	               (default GOMAXPROCS; 1 = sequential; byte-identical either way)
//	-cachedir s    content-addressed result cache directory (persists runs across invocations)
//	-retries n     extra execution attempts for transiently failed jobs (worker panics)
//	-stats         print engine scheduler/cache statistics to stderr when done
//	-workload s    workload for `run`
//	-method s      method label for `run` (e.g. "R$BP (20%)", "S$BP", "None")
//	-regimen s     sampling strategy for `run` (see `rsr regimens`); empty
//	               runs the legacy engine path, which is byte-identical to
//	               "stratified-uniform". Like every flag, it must precede
//	               the command: `rsr -regimen ranked-set run`
//	-cpuprofile f  write a CPU profile to f
//	-memprofile f  write an allocation profile to f on exit
//	-metrics-out f write a JSON metrics snapshot to f on exit
//	-trace-out f   write a Chrome trace (chrome://tracing, ui.perfetto.dev)
//	               of every run's per-cluster phases to f on exit; with
//	               -cluster, the coordinator's merged fabric trace — one
//	               process lane per node, clock-rebased — is fetched instead
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"time"

	"rsr/internal/cluster"
	"rsr/internal/engine"
	"rsr/internal/experiments"
	"rsr/internal/obs"
	"rsr/internal/regimen"
	"rsr/internal/report"
	"rsr/internal/sampling"
	"rsr/internal/stats"
	"rsr/internal/warmup"
	"rsr/internal/workload"
)

// clusterRunner adapts the cluster client to the lab's Runner seam.
type clusterRunner struct{ c *cluster.Client }

func (r clusterRunner) Submit(ctx context.Context, job engine.Job) (experiments.Waiter, error) {
	t, err := r.c.Submit(ctx, job)
	if err != nil {
		return nil, err
	}
	return t, nil
}

func (r clusterRunner) Close() {}

func main() {
	clusterAddr := flag.String("cluster", "", "sweep-fabric coordinator URL (e.g. http://host:9900); jobs run on its workers instead of a local engine")
	scale := flag.Float64("scale", 1.0, "workload length scale (1.0 = 20M instructions)")
	seed := flag.Int64("seed", 2007, "cluster placement seed")
	workloadsFlag := flag.String("workloads", "", "comma-separated workload subset")
	parallel := flag.Int("parallel", 0, "engine worker-pool size (0 = GOMAXPROCS; use 1 for clean per-run wall times)")
	par := flag.Int("par", 0, "deprecated alias for -parallel")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "cluster-pipeline shards per sampled run (1 = sequential; results byte-identical at any count)")
	cacheDir := flag.String("cachedir", "", "content-addressed result cache directory (empty = memory-only)")
	retries := flag.Int("retries", 0, "extra execution attempts for transiently failed jobs (worker panics)")
	stats := flag.Bool("stats", false, "print engine scheduler/cache statistics to stderr when done")
	format := flag.String("format", "text", "output format: text, csv, or json")
	out := flag.String("out", "rsr-report.html", "output path for `report`")
	workloadFlag := flag.String("workload", "twolf", "workload for `run`")
	methodFlag := flag.String("method", "R$BP (20%)", "warm-up method label for `run`")
	regimenFlag := flag.String("regimen", "", "sampling strategy for `run` (empty = legacy engine path, identical to stratified-uniform; see `rsr regimens`)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to `file`")
	memProfile := flag.String("memprofile", "", "write an allocation profile to `file` on exit")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot (engine, phase, warm-up families) to `file` on exit")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of every run's phases to `file` on exit (open in chrome://tracing or ui.perfetto.dev)")
	flag.Parse()

	var cpuFile *os.File
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rsr: -cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rsr: -cpuprofile:", err)
			os.Exit(1)
		}
		cpuFile = f
	}

	// Observability sinks are built up front so the lab's engine and every
	// run record into them; their files are written by flush below.
	var reg *obs.Registry
	var tracer *obs.Tracer
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}
	if *traceOut != "" {
		tracer = obs.NewTracer(0)
	}

	// Flushing is explicit (the error path exits via os.Exit, skipping
	// defers) and idempotent, because it runs from two places: the end of
	// main and the signal handler below.
	var flushOnce sync.Once
	var flushErr error
	flush := func() {
		flushOnce.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			if *memProfile != "" {
				if perr := writeMemProfile(*memProfile); perr != nil {
					fmt.Fprintln(os.Stderr, "rsr: -memprofile:", perr)
					flushErr = perr
				}
			}
			if reg != nil {
				if perr := writeMetrics(reg, *metricsOut); perr != nil {
					fmt.Fprintln(os.Stderr, "rsr: -metrics-out:", perr)
					flushErr = perr
				}
			}
			if tracer != nil {
				if perr := writeTrace(tracer, *traceOut); perr != nil {
					fmt.Fprintln(os.Stderr, "rsr: -trace-out:", perr)
					flushErr = perr
				}
			}
		})
	}

	// An interrupted sweep is exactly when a profile is most wanted: flush
	// on SIGINT/SIGTERM too, then exit with the conventional 128+signal
	// status.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		flush()
		signal.Stop(sig)
		if sn, ok := s.(syscall.Signal); ok {
			os.Exit(128 + int(sn))
		}
		os.Exit(1)
	}()

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Parallelism = *parallel
	if cfg.Parallelism == 0 {
		cfg.Parallelism = *par
	}
	cfg.CacheDir = *cacheDir
	cfg.Retries = *retries
	cfg.Shards = *shards
	cfg.Metrics = reg
	cfg.Tracer = tracer
	if *workloadsFlag != "" {
		cfg.Workloads = strings.Split(*workloadsFlag, ",")
	}
	var clusterClient *cluster.Client
	if *clusterAddr != "" {
		// One request ID for the whole invocation: the coordinator and every
		// worker tag their logs and engine events with it, so a sweep is
		// traceable end to end from this process's submissions. The sweep tag
		// rides the same way (X-Sweep-ID): the coordinator groups every job
		// of this invocation into one traceable sweep, and -trace-out below
		// fetches its merged fabric trace.
		reqID := cluster.NewRequestIDs().Next()
		cl := cluster.NewClient(*clusterAddr, reqID, nil)
		cl.SetSweep("rsr-" + reqID)
		if _, err := cl.Handshake(context.Background()); err != nil {
			fmt.Fprintln(os.Stderr, "rsr: -cluster:", err)
			os.Exit(1)
		}
		cfg.Runner = clusterRunner{cl}
		clusterClient = cl
	}

	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "all"
	}
	if cmd == "top" {
		if clusterClient == nil {
			fmt.Fprintln(os.Stderr, "rsr: top requires -cluster URL")
			os.Exit(2)
		}
		if err := runTop(clusterClient, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "rsr:", err)
			os.Exit(1)
		}
		return
	}
	err := dispatch(cmd, cfg, *workloadFlag, *methodFlag, *regimenFlag, *format, *out, *stats)

	// In cluster mode the spans live on the fabric, not in this process:
	// -trace-out captures the coordinator's merged fabric trace (coordinator
	// lane plus one lane per worker, clock-rebased) for this invocation's
	// sweep tag. A fetch failure falls back to the (likely empty) local ring
	// so the flag still produces a parseable file.
	if clusterClient != nil && tracer != nil && err == nil {
		if terr := writeFabricTrace(clusterClient, *traceOut); terr != nil {
			fmt.Fprintln(os.Stderr, "rsr: -trace-out: fabric trace:", terr)
		} else {
			tracer = nil // flushed; skip the local writeTrace
		}
	}

	flush()
	if err == nil {
		err = flushErr
	}

	if err != nil {
		fmt.Fprintln(os.Stderr, "rsr:", err)
		os.Exit(1)
	}
}

// writeMemProfile records the allocation profile after a final GC so the
// heap numbers reflect live state, matching `go test -memprofile`.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.Lookup("allocs").WriteTo(f, 0)
}

// writeMetrics dumps the registry snapshot as indented JSON.
func writeMetrics(reg *obs.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(reg.Snapshot())
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeFabricTrace downloads the coordinator's merged fabric trace for this
// invocation's sweep tag and writes it to path.
func writeFabricTrace(cl *cluster.Client, path string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	trace, err := cl.FetchSweepTrace(ctx, cl.Sweep())
	if err != nil {
		return err
	}
	return os.WriteFile(path, trace, 0o644)
}

// writeTrace dumps the span ring as Chrome trace-event JSON.
func writeTrace(tr *obs.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = tr.WriteChromeTrace(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if dropped := tr.Dropped(); dropped > 0 {
		fmt.Fprintf(os.Stderr, "rsr: -trace-out: ring wrapped, oldest %d spans overwritten\n", dropped)
	}
	return err
}

func dispatch(cmd string, cfg experiments.Config, wl, method, regimenName, format, out string, stats bool) error {
	lab := experiments.NewLab(cfg)
	defer lab.Close()
	if stats && lab.Engine() != nil {
		defer func() {
			s := lab.Engine().Stats()
			fmt.Fprintf(os.Stderr,
				"engine: workers=%d done=%d failed=%d cache hits=%d (disk %d) misses=%d coalesced=%d retries=%d panics=%d quarantined=%d wall=%v\n",
				lab.Engine().Workers(), s.Done, s.Failed, s.CacheHits, s.DiskHits, s.CacheMisses,
				s.Coalesced, s.Retries, s.Panics, s.Quarantined, s.Wall)
		}()
	}
	switch cmd {
	case "report":
		return writeReport(lab, cfg, out)
	case "list":
		fmt.Println("workloads:")
		for _, w := range workload.All() {
			fmt.Printf("  %-8s %s\n", w.Name, w.Description)
		}
		fmt.Println("\nwarm-up methods:")
		for _, s := range warmup.Matrix() {
			fmt.Printf("  %s\n", s.Label())
		}
		return nil
	case "table1":
		rows, err := lab.Table1()
		if err != nil {
			return err
		}
		switch format {
		case "csv":
			return experiments.WriteTable1CSV(os.Stdout, rows)
		case "json":
			return experiments.WriteJSON(os.Stdout, rows)
		default:
			fmt.Print(experiments.RenderTable1(rows))
		}
		return nil
	case "table2":
		fmt.Println("Table 2: warm-up method experiments")
		for _, s := range warmup.Matrix() {
			fmt.Printf("  %-12s kind=%v cache=%v bpred=%v percent=%d\n",
				s.Label(), s.Kind, s.Cache, s.BPred, s.Percent)
		}
		return nil
	case "fig5", "fig6", "fig7", "fig8":
		f, err := figure(lab, cmd)
		if err != nil {
			return err
		}
		switch format {
		case "csv":
			return experiments.WriteCellsCSV(os.Stdout, f.Cells)
		case "json":
			return experiments.WriteJSON(os.Stdout, f)
		default:
			fmt.Print(f.Render())
		}
		return nil
	case "fig9":
		f, err := lab.Figure9()
		if err != nil {
			return err
		}
		switch format {
		case "csv":
			return experiments.WriteFigure9CSV(os.Stdout, f)
		case "json":
			return experiments.WriteJSON(os.Stdout, f)
		default:
			fmt.Print(experiments.RenderFigure9(f))
		}
		return nil
	case "appendix":
		cells, err := lab.Appendix()
		if err != nil {
			return err
		}
		switch format {
		case "csv":
			return experiments.WriteCellsCSV(os.Stdout, cells)
		case "json":
			return experiments.WriteJSON(os.Stdout, cells)
		default:
			fmt.Print(experiments.RenderAppendix(cells))
		}
		return nil
	case "all":
		rows, err := lab.Table1()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable1(rows))
		fmt.Println()
		for _, id := range []string{"fig5", "fig6", "fig7", "fig8"} {
			f, err := figure(lab, id)
			if err != nil {
				return err
			}
			fmt.Print(f.Render())
			fmt.Println()
		}
		f9, err := lab.Figure9()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFigure9(f9))
		fmt.Println()
		cells, err := lab.Appendix()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderAppendix(cells))
		return nil
	case "ablate":
		cells, err := lab.AblationReuse(90)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderAblationReuse(cells))
		fmt.Println()
		inf, err := lab.AblationInference()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderCells("Ablation: counter inference (Figure 3 rule) on/off", inf))
		fmt.Println()
		dw, err := lab.AblationDetailedWarm(8000)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderCells("Ablation: detailed (hot-start) warming vs functional warming", dw))
		fmt.Println()
		bus, err := lab.AblationBusContention()
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderBusAblation(bus))
		fmt.Println()
		pf, err := lab.AblationPrefetch()
		if err != nil {
			return err
		}
		fmt.Println("Ablation: next-line prefetcher (extension; off in the paper's machine)")
		fmt.Printf("%-10s %12s %12s %9s\n", "workload", "baseline", "prefetch", "speedup")
		for _, r := range pf {
			fmt.Printf("%-10s %12.4f %12.4f %8.2fx\n", r.Workload, r.IPCBaseline, r.IPCPrefetch, r.Speedup)
		}
		return nil
	case "regimens":
		fmt.Println("sampling strategies (rsr -regimen <name> run; flags precede the command):")
		for _, s := range regimen.All() {
			fmt.Printf("  %-22s %s\n", s.Name(), s.Describe())
		}
		return nil
	case "strategies":
		cells, err := lab.StrategyHeadToHead()
		if err != nil {
			return err
		}
		switch format {
		case "csv":
			return experiments.WriteStrategiesCSV(os.Stdout, cells)
		case "json":
			return experiments.WriteJSON(os.Stdout, cells)
		default:
			fmt.Print(experiments.RenderStrategies(cells))
		}
		return nil
	case "sweep":
		// The workload name is user input: fail on a typo instead of
		// silently sweeping under the default regimen.
		if _, err := experiments.RegimenForStrict(wl); err != nil {
			return err
		}
		rev, fp, err := lab.Sweep(wl, nil)
		if err != nil {
			return err
		}
		fmt.Printf("Warm-up percentage sweep on %s\n", wl)
		fmt.Printf("%8s %12s %12s %14s %14s\n", "percent", "reverse RE", "fixed RE", "reverse work", "fixed work")
		for i := range rev {
			fmt.Printf("%7d%% %11.2f%% %11.2f%% %14d %14d\n",
				rev[i].Percent, 100*rev[i].Cell.RelErr, 100*fp[i].Cell.RelErr,
				rev[i].Cell.Work.ReconScanned+rev[i].Cell.Work.ReconApplied,
				fp[i].Cell.Work.WarmOps)
		}
		return nil
	case "run":
		spec, err := warmup.SpecByLabel(method)
		if err != nil {
			return fmt.Errorf("%w (see `rsr list`)", err)
		}
		// The workload name is user input: fail on a typo instead of
		// silently running the default regimen.
		reg, err := experiments.RegimenForStrict(wl)
		if err != nil {
			return err
		}
		if regimenName != "" {
			return runStrategy(lab, cfg, wl, regimenName, reg, spec)
		}
		cell, err := lab.Run(wl, spec)
		if err != nil {
			return err
		}
		fmt.Printf("workload   %s\nmethod     %s\ntrue IPC   %.4f\nestimate   %.4f\nrel error  %.4f\nconfident  %v\ntime       %v\nwork       %+v\n",
			cell.Workload, cell.Method, cell.TrueIPC, cell.Estimate, cell.RelErr,
			cell.Confident, cell.Elapsed, cell.Work)
		return nil
	default:
		return fmt.Errorf("unknown command %q (try: list, table1, table2, fig5..fig9, appendix, all, regimens, strategies, run)", cmd)
	}
}

// runStrategy executes one run through a named sampling strategy, scored
// against the engine-cached true IPC. The output fields match the legacy
// `run` path exactly (only wall-clock `time` differs run to run), so
// `-regimen stratified-uniform` diffs clean against the pre-strategy path —
// the regimen-smoke CI target relies on this.
func runStrategy(lab *experiments.Lab, cfg experiments.Config, wl, name string, reg sampling.Regimen, spec warmup.Spec) error {
	strat, err := regimen.ByName(name)
	if err != nil {
		return fmt.Errorf("%w (see `rsr regimens`)", err)
	}
	full, err := lab.Full(wl)
	if err != nil {
		return err
	}
	trueIPC := full.Result.IPC()
	w, err := workload.ByName(wl)
	if err != nil {
		return err
	}
	shards := cfg.Shards
	out, err := strat.Run(regimen.Params{
		Program: w.Build(),
		Machine: sampling.DefaultMachine(),
		Regimen: reg,
		Total:   cfg.Total(),
		Seed:    cfg.Seed,
		Warmup:  spec,
		Shards:  shards,
		Instr:   regimen.NewInstruments(cfg.Metrics),
	})
	if err != nil {
		return err
	}
	rel := stats.RelErr(out.Estimate.IPC, trueIPC)
	fmt.Printf("workload   %s\nmethod     %s\ntrue IPC   %.4f\nestimate   %.4f\nrel error  %.4f\nconfident  %v\ntime       %v\nwork       %+v\n",
		wl, spec.Label(), trueIPC, out.Estimate.IPC, rel,
		out.Estimate.Confident(trueIPC), out.Elapsed, out.Work)
	if out.Plan.ProfileInstructions > 0 {
		fmt.Printf("profile    %d instructions\n", out.Plan.ProfileInstructions)
	}
	return nil
}

// writeReport renders the full HTML report (Table 1, Figures 5-9).
func writeReport(lab *experiments.Lab, cfg experiments.Config, path string) error {
	rows, err := lab.Table1()
	if err != nil {
		return err
	}
	var figs []*experiments.FigureResult
	for _, id := range []string{"fig5", "fig6", "fig7", "fig8"} {
		f, err := figure(lab, id)
		if err != nil {
			return err
		}
		figs = append(figs, f)
	}
	f9, err := lab.Figure9()
	if err != nil {
		return err
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	err = report.Write(file, &report.Data{
		Title: "Reverse State Reconstruction — reproduction report",
		Subtitle: fmt.Sprintf("scale %.2f (%d instructions per workload), seed %d",
			cfg.Scale, cfg.Total(), cfg.Seed),
		Generated: time.Now(),
		Table1:    rows,
		Figures:   figs,
		SimPoint:  f9,
	})
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func figure(lab *experiments.Lab, id string) (*experiments.FigureResult, error) {
	switch id {
	case "fig5":
		return lab.Figure5()
	case "fig6":
		return lab.Figure6()
	case "fig7":
		return lab.Figure7()
	default:
		return lab.Figure8()
	}
}
