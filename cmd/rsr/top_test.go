package main

import (
	"strings"
	"testing"
	"time"

	"rsr/internal/cluster"
)

func TestRenderStatusSortsStragglersFirst(t *testing.T) {
	st := cluster.ClusterStatus{
		Lobby: 1, Queued: 4, Running: 2, Done: 10, Failed: 1, Sweeps: 1,
		JournalFsyncs: 42, JournalFsyncMeanMS: 0.8, JournalFsyncP99MS: 2.5,
		Nodes: []cluster.NodeStatus{
			{Node: "worker-a", QueueDepth: 2, Inflight: 1, ShardsInUse: 4,
				ShardCapacity: 8, BeatAgeMS: 120, ClockOffsetNS: 1_500_000,
				OldestLeaseAgeMS: 900, OldestLeaseJob: "abcd1234"},
			{Node: "worker-b", QueueDepth: 1, Inflight: 2, ShardsInUse: 8,
				ShardCapacity: 8, BeatAgeMS: 80, ClockOffsetNS: -3_000,
				OldestLeaseAgeMS: 4_200, OldestLeaseJob: "ef567890"},
		},
	}
	out := renderStatus(st, time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC))

	for _, want := range []string{
		"accepting",
		"lobby 1  queued 4  running 2  done 10  failed 1  sweeps 1",
		"journal: 42 fsyncs  mean 0.80ms  p99 ≤ 2.50ms",
		"worker-a", "worker-b", "abcd1234", "ef567890",
		"+1ms",  // worker-a's clock offset
		"-3µs",  // worker-b's clock offset
		"4.2s",  // worker-b's straggler age
		"900ms", // worker-a's straggler age
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	// worker-b holds the oldest lease, so its row must come first.
	if strings.Index(out, "worker-b") > strings.Index(out, "worker-a") {
		t.Errorf("straggler worker-b not sorted first:\n%s", out)
	}
}

func TestRenderStatusEmptyFabric(t *testing.T) {
	out := renderStatus(cluster.ClusterStatus{Draining: true}, time.Now())
	if !strings.Contains(out, "draining") || !strings.Contains(out, "no live workers") {
		t.Errorf("empty-fabric frame wrong:\n%s", out)
	}
}

func TestFmtMS(t *testing.T) {
	for _, tc := range []struct {
		ms   int64
		want string
	}{{0, "0ms"}, {999, "999ms"}, {1500, "1.5s"}, {59_999, "60.0s"}, {192_000, "3m12s"}} {
		if got := fmtMS(tc.ms); got != tc.want {
			t.Errorf("fmtMS(%d) = %q, want %q", tc.ms, got, tc.want)
		}
	}
}
