package main

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"rsr/internal/cluster"
)

// topEvery is the status poll-and-redraw period of `rsr top`.
const topEvery = time.Second

// topFailBudget bounds consecutive poll failures before `rsr top` gives up
// on the coordinator rather than redrawing a stale screen forever.
const topFailBudget = 10

// runTop polls the coordinator's /v1/status once a second and redraws a
// terminal dashboard until the process is interrupted (the main signal
// handler owns SIGINT/SIGTERM) or the coordinator stays unreachable past
// the failure budget.
func runTop(cl *cluster.Client, w io.Writer) error {
	fails := 0
	for {
		ctx, cancel := context.WithTimeout(context.Background(), topEvery)
		st, err := cl.FetchStatus(ctx)
		cancel()
		if err != nil {
			if fails++; fails >= topFailBudget {
				return fmt.Errorf("top: coordinator unreachable after %d polls: %w", fails, err)
			}
			fmt.Fprintf(w, "rsr top: poll failed (%d/%d): %v\n", fails, topFailBudget, err)
		} else {
			fails = 0
			// ANSI clear + home, then one full frame: simpler and more
			// portable than cursor bookkeeping, and flicker-free enough at
			// one frame a second.
			fmt.Fprint(w, "\x1b[2J\x1b[H")
			fmt.Fprint(w, renderStatus(st, time.Now()))
		}
		time.Sleep(topEvery)
	}
}

// renderStatus formats one ClusterStatus snapshot as the `rsr top` frame.
// Pure so it can be unit-tested; now stamps the header.
func renderStatus(st cluster.ClusterStatus, now time.Time) string {
	var b strings.Builder
	state := "accepting"
	if st.Draining {
		state = "draining"
	}
	fmt.Fprintf(&b, "rsr top — %s — %s\n", now.Format("15:04:05"), state)
	fmt.Fprintf(&b, "jobs: lobby %d  queued %d  running %d  done %d  failed %d  sweeps %d\n",
		st.Lobby, st.Queued, st.Running, st.Done, st.Failed, st.Sweeps)
	if st.JournalFsyncs > 0 {
		fmt.Fprintf(&b, "journal: %d fsyncs  mean %.2fms  p99 ≤ %.2fms\n",
			st.JournalFsyncs, st.JournalFsyncMeanMS, st.JournalFsyncP99MS)
	}
	b.WriteString("\n")
	if len(st.Nodes) == 0 {
		b.WriteString("no live workers\n")
		return b.String()
	}
	// Stragglers first: the node with the oldest in-flight lease is the one
	// an operator wants to look at.
	nodes := append([]cluster.NodeStatus(nil), st.Nodes...)
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].OldestLeaseAgeMS != nodes[j].OldestLeaseAgeMS {
			return nodes[i].OldestLeaseAgeMS > nodes[j].OldestLeaseAgeMS
		}
		return nodes[i].Node < nodes[j].Node
	})
	fmt.Fprintf(&b, "%-16s %5s %5s %9s %7s %9s %10s %s\n",
		"node", "queue", "lease", "shards", "beat", "clock", "slowest", "job")
	for _, n := range nodes {
		slowest := "-"
		job := ""
		if n.OldestLeaseAgeMS > 0 {
			slowest = fmtMS(n.OldestLeaseAgeMS)
			job = n.OldestLeaseJob
		}
		fmt.Fprintf(&b, "%-16s %5d %5d %5d/%-3d %7s %9s %10s %s\n",
			n.Node, n.QueueDepth, n.Inflight, n.ShardsInUse, n.ShardCapacity,
			fmtMS(n.BeatAgeMS), fmtClock(n.ClockOffsetNS), slowest, job)
	}
	return b.String()
}

// fmtMS renders a millisecond age compactly: "320ms", "4.2s", "3m12s".
func fmtMS(ms int64) string {
	switch {
	case ms < 1000:
		return fmt.Sprintf("%dms", ms)
	case ms < 60_000:
		return fmt.Sprintf("%.1fs", float64(ms)/1000)
	default:
		return fmt.Sprintf("%dm%02ds", ms/60_000, (ms%60_000)/1000)
	}
}

// fmtClock renders a worker's clock offset relative to the coordinator:
// signed, in the most readable unit.
func fmtClock(ns int64) string {
	switch abs := max64(ns, -ns); {
	case ns == 0:
		return "0"
	case abs < 1_000_000:
		return fmt.Sprintf("%+dµs", ns/1_000)
	case abs < 1_000_000_000:
		return fmt.Sprintf("%+dms", ns/1_000_000)
	default:
		return fmt.Sprintf("%+.1fs", float64(ns)/1e9)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
