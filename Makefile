# Developer workflow for the rsr reproduction.
#
#   make build    compile everything
#   make test     tier-1 gate: go build ./... && go test ./...
#   make verify   vet + race-test the concurrent code paths
#   make bench    sequential-vs-parallel sweep benchmark at small scale
#   make all      everything above

GO ?= go

.PHONY: all build test verify bench

all: build test verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# verify keeps the concurrent engine and the simulation substrate it
# schedules race-clean: the engine package owns the worker pool / cache /
# single-flight machinery, and the sampling package carries the fresh-
# state-per-call concurrency contract the engine relies on.
verify:
	$(GO) vet ./...
	$(GO) test -race ./internal/engine/... ./internal/sampling/... ./cmd/rsrd/...

bench:
	$(GO) test -run '^$$' -bench BenchmarkTable2SweepParallelism -benchtime 1x .
