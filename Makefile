# Developer workflow for the rsr reproduction.
#
#   make build       compile everything
#   make test        tier-1 gate: go build ./... && go test ./...
#   make verify      vet + race-test the concurrent code paths
#   make chaos       race-enabled fault-injection suite (chaos + drain tests)
#   make obs-smoke   end-to-end observability check: rsrd /metrics scrape +
#                    rsr -metrics-out/-trace-out artifacts
#   make cluster-smoke  sweep-fabric check: 1 rsrc coordinator + 2 peer rsrd
#                    workers, sweep output diffed against a single-node run
#   make trace-smoke fabric observability check: merged Chrome trace of a
#                    3-process sweep (coordinator + both worker lanes, sweep
#                    tags, clock rebase), federated /metrics, /v1/status
#   make shard-smoke sharded-pipeline check: race-enabled full-method sweep
#                    diffed byte-for-byte against the sequential pipeline
#   make regimen-smoke  sampling-strategy check: `-regimen stratified-uniform`
#                    diffed byte-for-byte against the legacy run path, then
#                    every registered strategy run end to end
#   make recovery-smoke  crash-recovery check: SIGKILL the coordinator
#                    mid-sweep, restart it on the same journal, diff the
#                    sweep against a single-node run
#   make bench       machine-readable benchmark snapshot (BENCH_$(LABEL).json)
#   make bench-sweep sequential-vs-parallel sweep benchmark at small scale
#   make all         everything above
#
# Compare two snapshots with:
#   go run ./cmd/rsrbench -label after -compare BENCH_baseline.json

GO ?= go
LABEL ?= dev

.PHONY: all build test verify chaos obs-smoke cluster-smoke trace-smoke shard-smoke recovery-smoke regimen-smoke bench bench-sweep

all: build test verify chaos obs-smoke cluster-smoke trace-smoke shard-smoke recovery-smoke regimen-smoke

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# verify keeps the concurrent engine and the simulation substrate it
# schedules race-clean: the engine package owns the worker pool / cache /
# single-flight machinery, and the sampling package carries both the
# fresh-state-per-call concurrency contract the engine relies on and the
# sharded cluster pipeline (parallel_test.go's byte-identity and
# cancellation tests run under -race here). The cluster and cas packages
# carry the distributed scheduler and the shared content-addressed store,
# both all-mutex-and-goroutine code. The regimen package's strategies drive
# the sharded pipeline and cancellation channel, so its byte-identity and
# cancellation tests run under -race too.
verify:
	$(GO) vet ./...
	$(GO) test -race ./internal/obs/... ./internal/engine/... ./internal/sampling/... \
		./internal/regimen/... ./internal/cluster/... ./internal/cas/... ./cmd/rsrd/...

# chaos drives the deterministic fault injector through the engine's real
# cache and run paths under the race detector: injected disk errors, torn
# writes, latency, and worker panics must leave results byte-identical to a
# fault-free run, and a draining daemon must finish in-flight jobs.
chaos:
	$(GO) test -race ./internal/fault/...
	$(GO) test -race -run 'Chaos|Fault|Drain|Cancel|Quarantin' \
		./internal/engine/... ./internal/sampling/... ./internal/cluster/... \
		./internal/cas/... ./cmd/rsrd/...

# obs-smoke proves the observability layer end to end without any test
# scaffolding: a real daemon serves /metrics after running a real job, and
# the CLI emits a metrics snapshot plus a Chrome trace. scripts/obs-smoke.sh
# fails if any required metric family or phase span is missing.
obs-smoke: build
	./scripts/obs-smoke.sh

# cluster-smoke proves the sweep fabric end to end with real processes: one
# rsrc coordinator, two peer-mode rsrd workers, and a sweep submitted with
# `rsr -cluster` whose output must be byte-identical to a single-node run.
cluster-smoke: build
	./scripts/cluster-smoke.sh

# trace-smoke proves fabric-wide observability end to end with real
# processes: a sweep through 1 coordinator + 2 workers captured with
# `rsr -cluster -trace-out` must yield one merged Chrome trace with a
# process lane per node, every span sweep-tagged and clock-rebased, and the
# coordinator's /metrics must federate worker families under a node label.
trace-smoke: build
	./scripts/trace-smoke.sh

# recovery-smoke proves coordinator crash recovery end to end with real
# processes: a journaled rsrc is SIGKILLed the moment a lease is journaled,
# restarted on the same journal + CAS directories after the workers' failure
# threshold, and the sweep must still come out byte-identical to a
# single-node run, with replay and reconnect metrics as evidence.
recovery-smoke: build
	./scripts/recovery-smoke.sh

# shard-smoke proves the sharded cluster pipeline end to end with the real
# CLI: the full warm-up sweep (every method, funcWarm included) run under
# the race detector at several shard counts must be byte-identical to the
# sequential pipeline. scripts/shard-smoke.sh diffs the sweep tables.
shard-smoke:
	./scripts/shard-smoke.sh

# regimen-smoke proves the sampling-strategy seam end to end with the real
# CLI: `-regimen stratified-uniform` must be byte-identical to the legacy
# run path (only the wall-clock `time` line is filtered), and every strategy
# listed by `rsr regimens` must complete a run under the race detector.
regimen-smoke:
	./scripts/regimen-smoke.sh

bench:
	$(GO) run ./cmd/rsrbench -label $(LABEL)

bench-sweep:
	$(GO) test -run '^$$' -bench BenchmarkTable2SweepParallelism -benchtime 1x .
